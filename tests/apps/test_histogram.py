"""Integration tests for the AM histogram (section 7.4 in use)."""

import pytest

from repro.apps.histogram import run_histogram
from repro.machine.machine import Machine
from repro.params import t3d_machine_params


def fresh_machine():
    return Machine(t3d_machine_params((2, 2, 1)))


def test_am_histogram_is_exact():
    result = run_histogram(fresh_machine(), num_bins=16,
                           samples_per_pe=40, method="am")
    assert result.lost_updates == 0
    assert result.total_counted == result.total_samples == 160


def test_am_histogram_matches_serial_count():
    from random import Random
    result = run_histogram(fresh_machine(), num_bins=8,
                           samples_per_pe=25, method="am", seed=7)
    expected = [0] * 8
    for pe in range(4):
        rng = Random(7 + pe)
        for _ in range(25):
            expected[rng.randrange(8)] += 1
    assert result.bins == expected


def test_racy_histogram_loses_updates():
    """The unsynchronized read-modify-write drops increments whenever
    two processors touch one bin in the same window — the word-level
    twin of the section 4.5 byte-write hazard."""
    result = run_histogram(fresh_machine(), num_bins=4,
                           samples_per_pe=40, method="racy")
    assert result.lost_updates > 0
    assert result.total_counted < result.total_samples


def test_more_contention_loses_more():
    few_bins = run_histogram(fresh_machine(), num_bins=2,
                             samples_per_pe=32, method="racy")
    many_bins = run_histogram(fresh_machine(), num_bins=64,
                              samples_per_pe=32, method="racy")
    assert few_bins.lost_updates > many_bins.lost_updates


def test_validation():
    with pytest.raises(ValueError):
        run_histogram(fresh_machine(), method="hope")
