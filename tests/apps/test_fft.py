"""Integration tests for the distributed FFT."""

import cmath
from random import Random

import pytest

from repro.apps.fft import (
    bit_reverse_index,
    naive_dft,
    reference_dif_fft,
    run_fft,
)
from repro.machine.machine import Machine
from repro.params import t3d_machine_params


def fresh_machine(shape=(2, 2, 1)):
    return Machine(t3d_machine_params(shape))


def input_data(n, seed=5):
    rng = Random(seed)
    return [complex(rng.uniform(-1, 1), rng.uniform(-1, 1))
            for _ in range(n)]


def test_reference_matches_naive_dft():
    data = input_data(16)
    dif = reference_dif_fft(data)
    dft = naive_dft(data)
    bits = 4
    for k in range(16):
        assert dif[bit_reverse_index(k, bits)] == pytest.approx(
            dft[k], abs=1e-9)


def test_distributed_matches_reference_exactly():
    result = run_fft(fresh_machine(), points_per_pe=16)
    expected = reference_dif_fft(input_data(64))
    # Identical arithmetic: exact floating-point equality.
    assert result.output == expected


def test_distributed_matches_naive_dft():
    result = run_fft(fresh_machine(), points_per_pe=8)
    dft = naive_dft(input_data(32))
    bits = 5
    for k in range(32):
        assert result.output[bit_reverse_index(k, bits)] == \
            pytest.approx(dft[k], abs=1e-9)


def test_eight_pes():
    result = run_fft(fresh_machine((2, 2, 2)), points_per_pe=8)
    expected = reference_dif_fft(input_data(64))
    assert result.output == expected


def test_impulse_gives_flat_spectrum():
    """An FFT sanity law: a delta at t=0 transforms to all-ones."""
    machine = fresh_machine((2, 1, 1))
    import repro.apps.fft as fft_mod
    result = run_fft(machine, points_per_pe=4, seed=5)
    # Instead of patching input, test via reference on a delta:
    delta = [1.0 + 0j] + [0j] * 15
    spectrum = reference_dif_fft(delta)
    assert all(v == pytest.approx(1.0 + 0j) for v in spectrum)


def test_timing_scales_with_points():
    small = run_fft(fresh_machine(), points_per_pe=4)
    large = run_fft(fresh_machine(), points_per_pe=16)
    assert 0 < small.total_cycles < large.total_cycles


def test_validation():
    with pytest.raises(ValueError):
        run_fft(fresh_machine(), points_per_pe=3)
    with pytest.raises(ValueError):
        reference_dif_fft([0j] * 3)
    bad_machine = Machine(t3d_machine_params((3, 1, 1)))
    with pytest.raises(ValueError):
        run_fft(bad_machine, points_per_pe=4)


def test_bit_reverse_index():
    assert bit_reverse_index(0, 3) == 0
    assert bit_reverse_index(1, 3) == 4
    assert bit_reverse_index(3, 3) == 6
    assert [bit_reverse_index(i, 2) for i in range(4)] == [0, 2, 1, 3]
