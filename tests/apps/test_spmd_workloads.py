"""The named SPMD workloads: reproducible, correct, and distinct."""

import pytest

from repro.apps.spmd_workloads import (
    MESSAGE_WORKLOADS,
    WORKLOADS,
    check_results,
    expected_landings,
    make_program,
    random_scripts,
    run_message_workload,
    run_workload,
)
from repro.machine.machine import Machine
from repro.params import t3d_machine_params
from repro.splitc.runtime import run_splitc


def fresh_machine(shape=(2, 2, 1)):
    return Machine(t3d_machine_params(shape))


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_completes_and_delivers(name):
    run_workload(fresh_machine(), name)


def test_catalog_covers_distinct_patterns():
    assert len(WORKLOADS) >= 6
    assert len({w.scripts for w in WORKLOADS.values()}) == len(WORKLOADS)
    for workload in WORKLOADS.values():
        assert workload.doc
        assert workload.num_pes == len(workload.scripts)


def test_random_scripts_are_reproducible():
    assert random_scripts(4, seed=11) == random_scripts(4, seed=11)
    assert random_scripts(4, seed=11) != random_scripts(4, seed=12)


def test_wrong_machine_size_is_rejected():
    with pytest.raises(ValueError, match="wants 4 processors"):
        run_workload(fresh_machine((2, 1, 1)), "ring-shift")


@pytest.mark.parametrize("name", sorted(MESSAGE_WORKLOADS))
def test_message_workload_completes_and_delivers(name):
    run_message_workload(fresh_machine(), name)


def test_message_catalog_is_documented():
    assert len(MESSAGE_WORKLOADS) >= 2
    for workload in MESSAGE_WORKLOADS.values():
        assert workload.doc
    with pytest.raises(ValueError, match="wants 4 processors"):
        run_message_workload(fresh_machine((2, 1, 1)), "msg-token-ring")


def test_expected_landings_tracks_last_phase():
    # PE 0 writes slot 0 in phase 0; PE 1 overwrites it in phase 1.
    scripts = (
        (((1, 0),),),                  # pe 0, phase 0: put (1, slot 0)
        ((), ((1, 0),)),               # pe 1, phase 1: put (1, slot 0)
    )
    landings = expected_landings(scripts)
    assert landings[(1, 0)] == (1, frozenset({1}))


def test_phase_skew_lands_in_script_order():
    # The skewed workload's late phases are carried by one processor;
    # the oracle and the run must agree.
    workload = WORKLOADS["phase-skew"]
    results, _ = run_splitc(fresh_machine(),
                            make_program(workload.scripts))
    check_results(workload.scripts, results)
