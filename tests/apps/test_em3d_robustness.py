"""Robustness of the Figure 9 claims across graph randomness.

The headline orderings should not be a property of one lucky seed:
across several synthetic graphs, ghost versions beat Simple, the
pipelined versions beat blocking ghost fills, and Bulk wins.
(Put-vs-get is barrier-gated and needs balanced graphs — asserted only
on aggregate, not per seed.)
"""

import pytest

from repro.apps.em3d import make_graph, run_em3d
from repro.machine.machine import Machine
from repro.params import t3d_machine_params

SEEDS = (1, 2026, 777)
VERSIONS = ("simple", "bundle", "get", "put", "bulk")


def times_for(seed):
    graph = make_graph(num_pes=4, nodes_per_pe=60, degree=6,
                       remote_fraction=0.4, seed=seed)
    out = {}
    for version in VERSIONS:
        machine = Machine(t3d_machine_params((2, 2, 1)))
        out[version] = run_em3d(machine, graph, version,
                                steps=1, warmup_steps=1).us_per_edge
    return out


@pytest.fixture(scope="module")
def sweeps():
    return {seed: times_for(seed) for seed in SEEDS}


def test_ghosts_beat_simple_for_every_seed(sweeps):
    for seed, times in sweeps.items():
        assert times["bundle"] < times["simple"] * 1.02, seed


def test_pipelining_beats_blocking_for_every_seed(sweeps):
    for seed, times in sweeps.items():
        assert times["get"] < times["bundle"], seed


def test_bulk_wins_for_every_seed(sweeps):
    for seed, times in sweeps.items():
        others = [times[v] for v in VERSIONS if v != "bulk"]
        assert times["bulk"] < min(others), seed


def test_put_beats_get_on_aggregate(sweeps):
    put = sum(times["put"] for times in sweeps.values())
    get = sum(times["get"] for times in sweeps.values())
    assert put < get
