"""Integration tests for the distributed transpose."""

import pytest

from repro.apps.transpose import STRATEGIES, run_transpose
from repro.machine.machine import Machine
from repro.params import t3d_machine_params


def fresh_machine(shape=(2, 2, 1)):
    return Machine(t3d_machine_params(shape))


def expected(n):
    return [[float(c * n + r) for c in range(n)] for r in range(n)]


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_transpose_correct(strategy):
    n = 8
    result = run_transpose(fresh_machine(), n, strategy)
    assert result.matrix == expected(n)


def test_bulk_beats_reads():
    n = 16
    reads = run_transpose(fresh_machine(), n, "reads")
    bulk = run_transpose(fresh_machine(), n, "bulk")
    assert bulk.total_cycles < reads.total_cycles


def test_blt_everywhere_pays_startup_on_small_tiles():
    n = 16          # 4-word tile rows: far below the BLT crossover
    bulk = run_transpose(fresh_machine(), n, "bulk")
    blt = run_transpose(fresh_machine(), n, "blt")
    assert blt.total_cycles > 5 * bulk.total_cycles


def test_self_tile_is_local_copy():
    machine = fresh_machine((2, 1, 1))
    result = run_transpose(machine, 4, "bulk")
    assert result.matrix == expected(4)
    # No BLT was needed for these tiny tiles.
    assert machine.node(0).blt.transfers_started == 0


def test_validation():
    with pytest.raises(ValueError):
        run_transpose(fresh_machine(), 10, "bulk")   # not divisible
    with pytest.raises(ValueError):
        run_transpose(fresh_machine(), 8, "teleport")
