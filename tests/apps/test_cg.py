"""Integration tests for distributed conjugate gradient."""

import pytest

from repro.apps.cg import _laplacian_matvec, reference_cg, run_cg
from repro.machine.machine import Machine
from repro.params import t3d_machine_params


def fresh_machine(shape=(2, 2, 1)):
    return Machine(t3d_machine_params(shape))


def test_converges_to_known_solution():
    from random import Random
    result = run_cg(fresh_machine(), rows_per_pe=8, seed=7)
    rng = Random(7)
    x_true = [rng.uniform(-1.0, 1.0) for _ in range(32)]
    assert result.residual < 1e-9
    for got, want in zip(result.x, x_true):
        assert got == pytest.approx(want, abs=1e-7)


def test_matches_sequential_cg():
    result = run_cg(fresh_machine(), rows_per_pe=6, seed=3)
    from random import Random
    rng = Random(3)
    x_true = [rng.uniform(-1.0, 1.0) for _ in range(24)]
    b = _laplacian_matvec(x_true)
    x_ref, iters_ref = reference_cg(b)
    for got, want in zip(result.x, x_ref):
        assert got == pytest.approx(want, abs=1e-7)
    # Same iteration count: the distributed arithmetic is identical.
    assert result.iterations == iters_ref


def test_cg_iteration_bound():
    """Exact-arithmetic CG finishes in at most N steps; floating point
    stays close for the Laplacian."""
    n = 16
    result = run_cg(fresh_machine((2, 1, 1)), rows_per_pe=8)
    assert result.iterations <= 2 * n


def test_eight_pes():
    result = run_cg(fresh_machine((2, 2, 2)), rows_per_pe=4, seed=11)
    assert result.residual < 1e-9
    assert len(result.x) == 32


def test_timing_positive_and_scales_with_problem():
    small = run_cg(fresh_machine(), rows_per_pe=4)
    large = run_cg(fresh_machine(), rows_per_pe=16)
    assert 0 < small.total_cycles < large.total_cycles


def test_validation():
    with pytest.raises(ValueError):
        run_cg(fresh_machine(), rows_per_pe=1)
