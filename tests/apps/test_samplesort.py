"""Integration tests for distributed sample sort."""

from random import Random

import pytest

from repro.apps.samplesort import METHODS, run_sample_sort
from repro.machine.machine import Machine
from repro.params import t3d_machine_params


def fresh_machine(shape=(2, 2, 1)):
    return Machine(t3d_machine_params(shape))


def expected_keys(num_pes, keys_per_pe, seed=1995):
    keys = []
    for pe in range(num_pes):
        rng = Random(seed + pe)
        keys.extend(rng.randrange(1_000_000) for _ in range(keys_per_pe))
    return sorted(keys)


@pytest.mark.parametrize("method", METHODS)
def test_sorts_globally(method):
    result = run_sample_sort(fresh_machine(), keys_per_pe=40,
                             method=method)
    assert result.sorted_keys == expected_keys(4, 40)


def test_segments_are_ordered_across_pes():
    result = run_sample_sort(fresh_machine(), keys_per_pe=50)
    # The concatenation is globally sorted, so PE p's max <= p+1's min.
    assert result.sorted_keys == sorted(result.sorted_keys)
    assert sum(result.per_pe_counts) == 200


def test_splitters_balance_reasonably():
    result = run_sample_sort(fresh_machine(), keys_per_pe=100,
                             oversample=8)
    # With decent oversampling no processor gets more than ~2.5x its
    # fair share.
    fair = 100
    assert max(result.per_pe_counts) < 2.5 * fair


def test_bulk_beats_element_exchange():
    bulk = run_sample_sort(fresh_machine(), keys_per_pe=64,
                           method="bulk")
    element = run_sample_sort(fresh_machine(), keys_per_pe=64,
                              method="element")
    assert bulk.total_cycles < element.total_cycles
    assert bulk.sorted_keys == element.sorted_keys


def test_works_on_eight_pes():
    result = run_sample_sort(fresh_machine((2, 2, 2)), keys_per_pe=24)
    assert result.sorted_keys == expected_keys(8, 24)


def test_single_key_per_pe():
    result = run_sample_sort(fresh_machine(), keys_per_pe=1)
    assert result.sorted_keys == expected_keys(4, 1)


def test_validation():
    with pytest.raises(ValueError):
        run_sample_sort(fresh_machine(), method="bogo")
    with pytest.raises(ValueError):
        run_sample_sort(fresh_machine(), keys_per_pe=0)
