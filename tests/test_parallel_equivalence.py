"""Golden-equivalence suite for the parallel sweep engine.

The contract of :mod:`repro.parallel` is that neither sharding a sweep
across a process pool nor replaying it from the persistent result
cache changes a single number: the merged results are *identical* to
the serial, in-process reference sweep — same floats, same point
order.  These tests drive small but regime-spanning versions of the
figure sweeps that ``make bench`` routes through the engine (Figures
1, 5, 8, 9) down all three tiers and assert equality, following the
pattern of ``tests/test_fastpath_equivalence.py``.
"""

from __future__ import annotations

import pytest

from repro.apps.em3d import driver
from repro.microbench import probes
from repro.parallel import SweepExecutor
from repro.parallel.cache import ResultCache
from repro.parallel.tasks import (BulkBandwidthTask, em3d_sweep_tasks,
                                  merge_curves, merge_points,
                                  stride_probe_tasks)

KB = 1024

#: Spans L1 hits, misses, and DRAM page behavior without the full
#: benchmark cost.
PROBE_SIZES = (4 * KB, 16 * KB, 64 * KB)


def _points(curves):
    return [(p.size, p.stride, p.avg_cycles, p.accesses)
            for p in curves.points]


def _three_tier(tasks, tmp_path):
    """Run a task list serial-fresh, parallel-fresh, and cache-replay;
    return the three result lists."""
    serial = SweepExecutor(jobs=1, use_cache=False).run_tasks(tasks)
    parallel = SweepExecutor(jobs=2, use_cache=False).run_tasks(tasks)
    SweepExecutor(jobs=1, cache=ResultCache(tmp_path)).run_tasks(tasks)
    replay_cache = ResultCache(tmp_path)
    cached = SweepExecutor(jobs=1, cache=replay_cache).run_tasks(tasks)
    assert replay_cache.hits == len(tasks), "replay must be all hits"
    return serial, parallel, cached


# ----------------------------------------------------------------------
# Figure 1: local read, both machines
# ----------------------------------------------------------------------

@pytest.mark.parametrize("system", ["t3d", "workstation"])
def test_fig1_sharded_and_cached_match_serial(system, tmp_path):
    tasks = stride_probe_tasks("local_read", system=system,
                               sizes=PROBE_SIZES)
    serial, parallel, cached = _three_tier(tasks, tmp_path)
    reference = probes.run_named_stride_probe("local_read", system=system,
                                              sizes=list(PROBE_SIZES))
    for results in (serial, parallel, cached):
        assert _points(merge_curves(results)) == _points(reference)


# ----------------------------------------------------------------------
# Figure 5: acknowledged remote write, both mechanisms
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mechanism", ["blocking", "splitc"])
def test_fig5_sharded_and_cached_match_serial(mechanism, tmp_path):
    tasks = stride_probe_tasks("remote_write", mechanism=mechanism,
                               sizes=PROBE_SIZES)
    serial, parallel, cached = _three_tier(tasks, tmp_path)
    reference = probes.remote_write_probe(mechanism=mechanism,
                                          sizes=list(PROBE_SIZES))
    for results in (serial, parallel, cached):
        assert _points(merge_curves(results)) == _points(reference)


# ----------------------------------------------------------------------
# Figure 8: bulk bandwidth, per-mechanism shards
# ----------------------------------------------------------------------

FIG8_SIZES = (8, 512, 8 * KB)


def test_fig8_sharded_and_cached_match_serial(tmp_path):
    tasks = [BulkBandwidthTask("read", m, FIG8_SIZES)
             for m in probes.READ_MECHANISMS]
    serial, parallel, cached = _three_tier(tasks, tmp_path)
    reference = probes.bulk_read_bandwidth_probe(sizes=list(FIG8_SIZES))
    for results in (serial, parallel, cached):
        assert merge_points(results) == reference


def test_fig8_write_sharded_and_cached_match_serial(tmp_path):
    tasks = [BulkBandwidthTask("write", m, FIG8_SIZES[1:])
             for m in probes.WRITE_MECHANISMS]
    serial, parallel, cached = _three_tier(tasks, tmp_path)
    reference = probes.bulk_write_bandwidth_probe(sizes=list(FIG8_SIZES[1:]))
    for results in (serial, parallel, cached):
        assert merge_points(results) == reference


# ----------------------------------------------------------------------
# Figure 9: EM3D, per-(fraction, version) shards
# ----------------------------------------------------------------------

EM3D_KW = dict(nodes_per_pe=30, degree=4, shape=(2, 1, 1))
EM3D_FRACTIONS = (0.0, 0.5)
EM3D_VERSIONS = ("simple", "bulk")


def test_fig9_sharded_and_cached_match_serial(tmp_path):
    tasks = em3d_sweep_tasks(EM3D_FRACTIONS, EM3D_VERSIONS, **EM3D_KW)
    serial, parallel, cached = _three_tier(tasks, tmp_path)
    reference = driver.sweep(fractions=EM3D_FRACTIONS,
                             versions=EM3D_VERSIONS, **EM3D_KW)
    for results in (serial, parallel, cached):
        assert list(results) == reference
