"""The gray-box analyzer characterizes machines it was never tuned
for — hypothetical nodes with different cache geometry.  This is the
real test of the methodology (section 2.1): the probes infer structure
from behavior, not from knowing the answer.
"""

import dataclasses

import pytest

from repro.microbench import probes
from repro.microbench.analyze import analyze_read_curves
from repro.microbench.harness import default_sizes
from repro.node.memsys import MemorySystem
from repro.params import CacheParams, t3d_node_params

KB = 1024


def memsys_with_l1(**cache_overrides):
    base = t3d_node_params()
    l1 = dataclasses.replace(CacheParams(), **cache_overrides)
    return MemorySystem(dataclasses.replace(base, l1=l1))


def profile_of(ms, lo=4 * KB, hi=256 * KB):
    curves = probes.local_read_probe(ms, sizes=default_sizes(lo, hi))
    return analyze_read_curves(curves)


def test_two_way_cache_not_flagged_direct_mapped():
    profile = profile_of(memsys_with_l1(associativity=2))
    assert not profile.direct_mapped
    assert profile.l1_size == 8 * KB


def test_four_way_cache_not_flagged_direct_mapped():
    profile = profile_of(memsys_with_l1(associativity=4))
    assert not profile.direct_mapped


def test_larger_cache_size_recovered():
    profile = profile_of(memsys_with_l1(size_bytes=32 * KB))
    assert profile.l1_size == 32 * KB


def test_smaller_cache_size_recovered():
    # The probe range must start below the cache under test, just as
    # the paper's probes started well below the expected 8 KB.
    profile = profile_of(memsys_with_l1(size_bytes=2 * KB), lo=1 * KB)
    assert profile.l1_size == 2 * KB


def test_wider_lines_recovered():
    profile = profile_of(memsys_with_l1(line_bytes=64))
    assert profile.line_bytes == 64


def test_narrower_lines_recovered():
    profile = profile_of(memsys_with_l1(line_bytes=16))
    assert profile.line_bytes == 16


def test_memory_time_tracks_dram_params():
    import repro.params as P
    base = t3d_node_params()
    slow = dataclasses.replace(
        base, dram=dataclasses.replace(P.DramParams(), access_cycles=50.0))
    profile = profile_of(MemorySystem(slow))
    assert profile.memory_cycles == pytest.approx(50.0, abs=2.0)
