"""Unit tests for ASCII report formatting."""

from repro.microbench.harness import LatencyCurves, ProbePoint
from repro.microbench.probes import BandwidthPoint, GroupCost
from repro.microbench.report import (
    format_bandwidths,
    format_comparison,
    format_curves,
    format_group_costs,
)


def sample_curves():
    return LatencyCurves(points=[
        ProbePoint(4096, 8, 1.0, 512),
        ProbePoint(4096, 16, 1.0, 256),
        ProbePoint(65536, 8, 6.25, 4096),
        ProbePoint(65536, 16, 11.5, 4096),
    ])


def test_format_curves_layout():
    text = format_curves(sample_curves(), title="local reads")
    lines = text.splitlines()
    assert lines[0] == "local reads"
    assert "4K" in lines[1] and "64K" in lines[1]
    assert text.count("\n") >= 4
    assert "(values in ns)" in text


def test_format_curves_cycles_unit():
    text = format_curves(sample_curves(), unit="cycles")
    assert "(values in cycles)" in text
    assert "6.2" in text            # raw cycles, not ns


def test_format_comparison():
    rows = [("uncached read", 91.0, 91.0, "cycles"),
            ("cached read", 114.0, 113.0, "cycles")]
    text = format_comparison(rows, title="headlines")
    assert "headlines" in text
    assert "1.00" in text
    assert "0.99" in text
    assert "uncached read" in text


def test_format_bandwidths():
    points = [BandwidthPoint("prefetch", 512, 35.2),
              BandwidthPoint("blt", 512, 2.1),
              BandwidthPoint("prefetch", 32768, 37.0),
              BandwidthPoint("blt", 32768, 55.0)]
    text = format_bandwidths(points, title="bulk reads")
    assert "prefetch" in text and "blt" in text
    assert "32K" in text
    assert "(MB/s)" in text


def test_format_group_costs():
    raw = [GroupCost(1, 110.0), GroupCost(16, 31.0)]
    sc = [GroupCost(1, 140.0), GroupCost(16, 55.0)]
    text = format_group_costs(raw, sc, title="prefetch groups")
    assert "group" in text
    assert "split-c" in text
    lines = text.splitlines()
    assert len(lines) == 5
