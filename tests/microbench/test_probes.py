"""Integration tests for the probe suite (reduced sweep ranges)."""

import pytest

from repro.microbench import probes
from repro.microbench.harness import default_sizes
from repro.node.memsys import t3d_memory_system
from repro.params import CYCLE_NS

KB = 1024

SMALL_SIZES = default_sizes(4 * KB, 64 * KB)


def test_local_read_probe_shows_cache_and_memory():
    curves = probes.local_read_probe(t3d_memory_system(), sizes=SMALL_SIZES)
    assert curves.at(4 * KB, 8).avg_cycles == pytest.approx(1.0)
    assert curves.at(64 * KB, 32).avg_cycles == pytest.approx(22.0, abs=1.0)


def test_local_write_probe_shows_merging():
    curves = probes.local_write_probe(t3d_memory_system(), sizes=SMALL_SIZES)
    small_stride = curves.at(64 * KB, 8).avg_cycles
    line_stride = curves.at(64 * KB, 32).avg_cycles
    assert small_stride == pytest.approx(3.0, abs=0.5)
    assert line_stride == pytest.approx(5.5, abs=1.0)


def test_remote_read_probe_uncached_level():
    curves = probes.remote_read_probe(mechanism="uncached",
                                      sizes=SMALL_SIZES + [256 * KB])
    assert curves.at(64 * KB, 32).avg_cycles == pytest.approx(91.0, abs=2.0)
    # Off-page at 16 KB strides adds ~15 cycles (needs enough rows per
    # bank that pages cannot all stay open: a 256 KB array).
    assert curves.at(256 * KB, 16 * KB).avg_cycles >= 104.0


def test_remote_read_probe_cached_prefetches_neighbors():
    curves = probes.remote_read_probe(mechanism="cached", sizes=SMALL_SIZES)
    # Stride 8: 3 of 4 accesses hit the fetched line.
    assert curves.at(64 * KB, 8).avg_cycles < 40.0
    assert curves.at(64 * KB, 32).avg_cycles == pytest.approx(114.0, abs=2.0)


def test_remote_read_probe_splitc_level():
    curves = probes.remote_read_probe(mechanism="splitc", sizes=[16 * KB])
    assert curves.at(16 * KB, 32).avg_cycles == pytest.approx(128.0, abs=2.0)


def test_remote_write_probes():
    raw = probes.remote_write_probe(mechanism="blocking", sizes=[16 * KB])
    assert raw.at(16 * KB, 32).avg_cycles == pytest.approx(130.0, abs=2.0)
    splitc = probes.remote_write_probe(mechanism="splitc", sizes=[16 * KB])
    assert splitc.at(16 * KB, 32).avg_cycles == pytest.approx(147.0, abs=2.0)


def test_nonblocking_write_probe():
    curves = probes.nonblocking_write_probe(mechanism="store",
                                            sizes=[32 * KB])
    assert curves.at(32 * KB, 32).avg_cycles == pytest.approx(17.0, abs=1.0)
    assert curves.at(32 * KB, 8).avg_cycles < 7.0       # merging
    put = probes.nonblocking_write_probe(mechanism="splitc",
                                         sizes=[32 * KB])
    assert put.at(32 * KB, 32).avg_cycles == pytest.approx(45.0, abs=2.0)


def test_prefetch_group_probe_amortizes():
    costs = probes.prefetch_group_probe(groups=[1, 4, 16])
    by_group = {c.group: c.cycles_per_element for c in costs}
    assert by_group[1] > 100.0
    assert by_group[16] < 40.0
    assert by_group[1] > by_group[4] > by_group[16]


def test_splitc_get_probe_adds_overhead():
    raw = probes.prefetch_group_probe(groups=[16])[0]
    get = probes.splitc_get_group_probe(groups=[16])[0]
    assert get.cycles_per_element > raw.cycles_per_element


def test_hazard_probes_all_fire():
    assert probes.synonym_hazard_probe().hazard_observed
    assert probes.status_bit_hazard_probe().hazard_observed
    assert probes.stale_cached_read_probe().hazard_observed


def test_network_hop_probe_slope():
    points = probes.network_hop_probe(shape=(8, 1, 1))
    hops = [h for h, _ in points]
    lat = {h: c for h, c in points}
    assert max(hops) >= 3
    per_hop = (lat[max(hops)] - lat[1]) / (max(hops) - 1) / 2
    # 2-3 cycles per hop each way (section 4.2).
    assert 2.0 <= per_hop <= 3.0


def test_streaming_bandwidth():
    bw = probes.streaming_bandwidth_probe(t3d_memory_system(),
                                          nbytes=64 * KB)
    assert bw > 150.0


def test_measure_headlines_keys_and_levels():
    h = probes.measure_headlines()
    assert h["annex_update"] == pytest.approx(23.0)
    assert h["uncached_read"] == pytest.approx(91.0, abs=2.0)
    assert h["cached_read"] == pytest.approx(114.0, abs=2.0)
    assert h["blocking_write"] == pytest.approx(130.0, abs=2.0)
    assert h["splitc_read"] == pytest.approx(128.0, abs=2.0)
    assert h["splitc_write"] == pytest.approx(147.0, abs=2.0)
    assert h["splitc_put"] == pytest.approx(45.0, abs=2.0)
    assert h["fetch_increment"] == pytest.approx(150.0)
    assert h["message_send"] == pytest.approx(122.0)
    assert h["message_interrupt"] * CYCLE_NS / 1000 == pytest.approx(25.0, rel=0.01)


def test_bulk_probe_shapes():
    reads = probes.bulk_read_bandwidth_probe(
        sizes=[8, 512, 32 * KB],
        mechanisms={k: v for k, v in probes.READ_MECHANISMS.items()
                    if k in ("uncached", "prefetch", "blt")})
    by = {(p.mechanism, p.nbytes): p.mb_per_s for p in reads}
    assert by[("uncached", 8)] > by[("prefetch", 8)]
    assert by[("prefetch", 512)] > by[("blt", 512)]
    assert by[("blt", 32 * KB)] > by[("prefetch", 32 * KB)]


def test_unknown_mechanisms_rejected():
    with pytest.raises(ValueError):
        probes.remote_read_probe(mechanism="nope", sizes=[4 * KB])
    with pytest.raises(ValueError):
        probes.remote_write_probe(mechanism="nope", sizes=[4 * KB])
    with pytest.raises(ValueError):
        probes.nonblocking_write_probe(mechanism="nope", sizes=[4 * KB])


def test_bulk_write_probe_cached_source_is_faster():
    cached = probes.bulk_write_bandwidth_probe(
        sizes=[4 * KB], mechanisms={"stores": probes.WRITE_MECHANISMS["stores"]},
        source_cached=True)[0]
    uncached = probes.bulk_write_bandwidth_probe(
        sizes=[4 * KB], mechanisms={"stores": probes.WRITE_MECHANISMS["stores"]},
        source_cached=False)[0]
    assert cached.mb_per_s > 1.3 * uncached.mb_per_s
