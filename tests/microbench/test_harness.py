"""Unit tests for the probe harness."""

import pytest

from repro.microbench.harness import (
    LatencyCurves,
    ProbePoint,
    default_sizes,
    default_strides,
    run_stride_probe,
)

KB = 1024


def test_default_sizes_powers_of_two():
    sizes = default_sizes(4 * KB, 64 * KB)
    assert sizes == [4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB]


def test_default_strides_up_to_half_size():
    strides = default_strides(64)
    assert strides == [8, 16, 32]


def test_probe_counts_and_averages():
    calls = []

    def access(now, addr):
        calls.append(addr)
        return 10.0

    curves = run_stride_probe(access, sizes=[64], warmup_passes=1,
                              measure_passes=2)
    point = curves.at(64, 8)
    assert point.avg_cycles == 10.0
    assert point.accesses == 16            # 8 addrs x 2 passes
    # warmup + measured: 8 * 3 calls at stride 8, plus strides 16, 32.
    assert len(calls) == 8 * 3 + 4 * 3 + 2 * 3


def test_warmup_excluded_from_average():
    state = {"n": 0}

    def access(now, addr):
        state["n"] += 1
        return 100.0 if state["n"] <= 4 else 1.0   # cold then warm

    curves = run_stride_probe(access, sizes=[32], warmup_passes=1,
                              measure_passes=1)
    assert curves.at(32, 8).avg_cycles == 1.0


def test_reset_called_per_point():
    resets = []

    def access(now, addr):
        return 1.0

    run_stride_probe(access, sizes=[64], reset_fn=lambda: resets.append(1))
    assert len(resets) == 3                 # strides 8, 16, 32


def test_truncation_cap():
    counts = []

    def access(now, addr):
        counts.append(addr)
        return 1.0

    curves = run_stride_probe(access, sizes=[1024], max_accesses=16,
                              warmup_passes=0, measure_passes=1)
    assert curves.at(1024, 8).accesses == 16


def test_min_footprint_raises_cap():
    curves = run_stride_probe(lambda now, addr: 1.0, sizes=[1024],
                              max_accesses=16, min_footprint=512,
                              warmup_passes=0, measure_passes=1)
    assert curves.at(1024, 8).accesses == 64      # 512 / 8


def test_time_advances_monotonically():
    times = []

    def access(now, addr):
        times.append(now)
        return 5.0

    run_stride_probe(access, sizes=[64], warmup_passes=0, measure_passes=1)
    # Within each point, time increases.
    assert times[:8] == sorted(times[:8])


def test_curve_accessors():
    curves = LatencyCurves(points=[
        ProbePoint(64, 8, 1.0, 8), ProbePoint(64, 16, 2.0, 4),
        ProbePoint(128, 8, 3.0, 16)])
    assert curves.sizes() == [64, 128]
    assert curves.strides() == [8, 16]
    assert curves.at(64, 16).avg_cycles == 2.0
    assert len(curves.curve(64)) == 2
    with pytest.raises(KeyError):
        curves.at(256, 8)


def test_probe_point_ns():
    p = ProbePoint(64, 8, 3.0, 8)
    assert p.avg_ns == pytest.approx(20.0, rel=0.01)
