"""The gray-box analyzer recovers the paper's Figure 1/2 findings."""

import pytest

from repro.microbench import probes
from repro.microbench.analyze import analyze_read_curves, analyze_write_curves
from repro.microbench.harness import default_sizes
from repro.node.memsys import t3d_memory_system, workstation_memory_system

KB = 1024


@pytest.fixture(scope="module")
def t3d_profile():
    curves = probes.local_read_probe(t3d_memory_system(),
                                     sizes=default_sizes(hi=512 * KB))
    return analyze_read_curves(curves)


@pytest.fixture(scope="module")
def ws_profile():
    curves = probes.local_read_probe(
        workstation_memory_system(),
        sizes=default_sizes(hi=2048 * KB),
        min_footprint=2048 * KB)
    return analyze_read_curves(curves)


def test_t3d_l1_geometry(t3d_profile):
    assert t3d_profile.hit_cycles == pytest.approx(1.0)
    assert t3d_profile.l1_size == 8 * KB
    assert t3d_profile.line_bytes == 32
    assert t3d_profile.direct_mapped


def test_t3d_memory_time(t3d_profile):
    assert t3d_profile.memory_cycles == pytest.approx(22.0, abs=1.0)


def test_t3d_has_no_l2(t3d_profile):
    assert not t3d_profile.has_l2


def test_t3d_dram_page_rise_not_tlb(t3d_profile):
    """Section 2.2's key inference: the 16 KB-stride rise is DRAM
    paging, because a TLB explanation would imply a ~2-entry TLB."""
    assert t3d_profile.dram_page_rise_stride == 16 * KB
    assert not t3d_profile.tlb_visible


def test_t3d_worst_case_same_bank(t3d_profile):
    assert t3d_profile.worst_case_cycles == pytest.approx(40.0, abs=1.0)


def test_workstation_l2_detected(ws_profile):
    assert ws_profile.has_l2
    assert ws_profile.l2_size == 512 * KB
    assert ws_profile.l2_cycles == pytest.approx(10.0, abs=1.0)


def test_workstation_memory_slower(ws_profile):
    assert ws_profile.memory_cycles == pytest.approx(45.0, abs=1.5)


def test_workstation_tlb_page_size(ws_profile):
    assert ws_profile.tlb_visible
    assert ws_profile.tlb_page_bytes == 8 * KB
    assert ws_profile.dram_page_rise_stride is None


def test_write_analysis_recovers_buffer():
    read_profile = analyze_read_curves(
        probes.local_read_probe(t3d_memory_system(),
                                sizes=default_sizes(hi=256 * KB)))
    curves = probes.local_write_probe(t3d_memory_system(),
                                      sizes=default_sizes(hi=256 * KB))
    profile = analyze_write_curves(curves, read_profile.memory_cycles)
    assert profile.write_merging
    assert profile.buffer_depth == 4
    assert profile.merged_cycles == pytest.approx(3.0, abs=0.5)


def test_analyze_empty_raises():
    from repro.microbench.harness import LatencyCurves
    with pytest.raises(ValueError):
        analyze_read_curves(LatencyCurves())


def test_write_analysis_recovers_merge_reach():
    """The merge granularity seen from the store side is the 32-byte
    line size (section 2.3)."""
    curves = probes.local_write_probe(t3d_memory_system(),
                                      sizes=default_sizes(hi=128 * KB))
    profile = analyze_write_curves(curves, memory_cycles=22.0)
    assert profile.merge_reach_bytes == 32


def test_merge_reach_tracks_wider_lines():
    import dataclasses
    from repro.node.memsys import MemorySystem
    from repro.params import CacheParams, t3d_node_params

    params = dataclasses.replace(
        t3d_node_params(), l1=CacheParams(line_bytes=64))
    ms = MemorySystem(params)
    curves = probes.local_write_probe(ms, sizes=default_sizes(hi=128 * KB))
    profile = analyze_write_curves(curves, memory_cycles=22.0)
    assert profile.merge_reach_bytes == 64
