"""Unit tests for the calibrated parameter module itself."""

import dataclasses

import pytest

from repro import params as P


def test_cycle_conversions_round_trip():
    assert P.ns_to_cycles(P.cycles_to_ns(91.0)) == pytest.approx(91.0)
    assert P.cycles_to_us(150.0) == pytest.approx(1.0)
    assert P.CYCLE_NS == pytest.approx(6.667, abs=0.01)


def test_mb_per_s():
    # 32 bytes in 22 cycles (one line fill) ~= 218 MB/s.
    assert P.mb_per_s(32, 22.0) == pytest.approx(218.0, rel=0.01)
    with pytest.raises(ValueError):
        P.mb_per_s(8, 0.0)


def test_headline_constants_match_paper():
    r = P.RemoteAccessParams()
    # Uncached read decomposition lands on 91 cycles.
    assert r.read_overhead_cycles + 2 * 2.5 + 22.0 == pytest.approx(91.0)
    # Cached adds the line payload: 114.
    assert (r.read_overhead_cycles + r.cached_line_extra_cycles
            + 2 * 2.5 + 22.0) == pytest.approx(114.0)
    # Non-blocking store steady state: drain / depth = 17.
    assert r.store_drain_cycles / P.WriteBufferParams().entries == \
        pytest.approx(17.0)


def test_cache_geometry_derived_fields():
    c = P.CacheParams()
    assert c.num_lines == 256
    assert c.num_sets == 256
    two_way = P.CacheParams(associativity=2)
    assert two_way.num_sets == 128


def test_machine_params_node_count():
    assert P.t3d_machine_params((2, 2, 2)).num_nodes == 8
    assert P.t3d_machine_params((4, 4, 2)).num_nodes == 32


def test_workstation_differs_where_it_should():
    t3d = P.t3d_node_params()
    ws = P.workstation_node_params()
    assert t3d.l2 is None and ws.l2 is not None
    assert t3d.tlb.never_misses and not ws.tlb.never_misses
    assert ws.dram.access_cycles > t3d.dram.access_cycles
    # Same core and L1 on both machines (same 21064).
    assert t3d.l1 == ws.l1
    assert t3d.alpha == ws.alpha


def test_params_are_frozen():
    node = P.t3d_node_params()
    with pytest.raises(dataclasses.FrozenInstanceError):
        node.l1.size_bytes = 1


def test_with_overrides_replaces_without_mutating():
    base = P.PrefetchParams()
    deeper = P.with_overrides(base, queue_depth=32)
    assert deeper.queue_depth == 32
    assert base.queue_depth == 16
    assert deeper.pop_cycles == base.pop_cycles


def test_annex_address_layout():
    assert P.LOCAL_ADDR_MASK == (1 << 32) - 1
    assert (5 << P.ANNEX_BIT_SHIFT) & P.LOCAL_ADDR_MASK == 0


def test_blt_startup_is_180_us():
    assert P.cycles_to_us(P.BltParams().startup_cycles) == pytest.approx(
        180.0)


def test_am_calibration_reaches_published_totals():
    am = P.AmParams()
    atomics = P.AtomicParams()
    # deposit ~ f&i + annex + ~6 merged store issues + software = 435.
    approx_deposit = (atomics.remote_cycles + 23.0 + 6 * 3.0
                      + am.deposit_software_cycles)
    assert P.cycles_to_us(approx_deposit) == pytest.approx(2.9, abs=0.05)


def test_describe_summarizes_the_machine():
    from repro.params import describe, t3d_machine_params, workstation_node_params
    text = describe(t3d_machine_params((4, 4, 2)))
    assert "32 x t3d-node" in text
    assert "8 KB, 32 B lines, 1-way" in text
    assert "L2: none" in text
    assert "huge pages" in text
    assert "BLT startup 180 us" in text
    ws = dataclasses.replace(t3d_machine_params((2, 1, 1)),
                             node=workstation_node_params())
    ws_text = describe(ws)
    assert "L2: 512 KB" in ws_text
    assert "8 KB pages" in ws_text
