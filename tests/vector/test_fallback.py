"""Tier-selection and graceful-degradation behavior of repro.vector.

The vectorized tier must never be load-bearing: with ``REPRO_VECTOR=0``,
with numpy missing, or for any stimulus it does not claim, every probe
must degrade to the fast or reference tier and produce the same
numbers.  These tests pin that contract — including the per-family
claim table, so silently starting (or stopping) to claim a family is a
visible diff.
"""

from __future__ import annotations

import sys
import warnings

import pytest

from repro import vector
from repro.microbench import probes
from repro.microbench.harness import PointSpec, run_stride_point
from repro.node.memsys import t3d_memory_system
from repro.vector import UnsupportedStimulus


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_VECTOR", raising=False)


# ----------------------------------------------------------------------
# The claim table (satellite: per-family fallback decisions, pinned)
# ----------------------------------------------------------------------

def test_claimed_families_pinned():
    """The per-family claim decisions are part of the tier's contract:
    the unclaimed families couple timing to observable machine state or
    data-dependent control flow (see the table's docstring), so a
    change here needs a matching exactness argument."""
    assert vector.CLAIMED_FAMILIES == {
        "local_read": True,
        "local_write": True,
        "remote_read": True,
        "streaming_bandwidth": True,
        "remote_write": False,
        "nonblocking_write": False,
        "bulk_transfer": False,
        "em3d": False,
    }


def test_unknown_family_is_not_claimed():
    assert not vector.claims("no_such_probe")
    sentinel = object()
    assert vector.stride_sweep_fn("no_such_probe",
                                  fallback=sentinel) is sentinel


# ----------------------------------------------------------------------
# Environment switch
# ----------------------------------------------------------------------

@pytest.mark.parametrize("value", ["0", "false", "no", "off", "OFF"])
def test_env_disables_tier(monkeypatch, value):
    monkeypatch.setenv("REPRO_VECTOR", value)
    assert not vector.enabled()
    sentinel = object()
    ms = t3d_memory_system()
    assert vector.stride_sweep_fn("local_read", node_params=ms.params,
                                  fallback=sentinel) is sentinel
    assert vector.streaming_read_total(ms.params, 4096) is None


def test_env_enabled_by_default():
    pytest.importorskip("numpy")
    assert vector.enabled()


# ----------------------------------------------------------------------
# Missing numpy: degrade with a one-line warning, never crash
# ----------------------------------------------------------------------

@pytest.fixture
def no_numpy(monkeypatch):
    """Simulate an interpreter without numpy: a ``None`` entry in
    ``sys.modules`` makes ``import numpy`` raise ImportError."""
    for name in [m for m in sys.modules if m == "numpy"
                 or m.startswith("numpy.")]:
        monkeypatch.setitem(sys.modules, name, None)
    monkeypatch.setattr(vector, "_warned_missing_numpy", False)


def test_missing_numpy_disables_tier(no_numpy):
    assert not vector.numpy_available()
    with pytest.warns(RuntimeWarning, match="numpy is not installed"):
        assert not vector.enabled()


def test_missing_numpy_warns_exactly_once(no_numpy):
    with pytest.warns(RuntimeWarning):
        vector.enabled()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert not vector.enabled()      # second call: silent


def test_missing_numpy_probe_still_runs(no_numpy):
    """The full probe path works without numpy — it just computes on
    the fast tier."""
    ms = t3d_memory_system()
    with pytest.warns(RuntimeWarning):
        curves = probes.local_read_probe(ms, sizes=[4096], memo_key=None)
    assert curves.points


# ----------------------------------------------------------------------
# Per-point fallback on UnsupportedStimulus
# ----------------------------------------------------------------------

def test_unsupported_point_routes_to_fallback():
    pytest.importorskip("numpy")
    ms = t3d_memory_system()
    calls = []

    def fallback(base, stride, count, warmup, measure):
        calls.append((base, stride, count, warmup, measure))
        return 42.0, count * measure

    sweep = vector.stride_sweep_fn("local_read", node_params=ms.params,
                                   fallback=fallback)
    assert sweep is not fallback         # the tier claimed the family
    # Non-canonical geometry: the kernel declines, the fallback runs.
    total, count = sweep(0, -8, 4, 1, 2)
    assert (total, count) == (42.0, 8)
    assert calls == [(0, -8, 4, 1, 2)]
    # Canonical geometry: the kernel answers, the fallback stays cold.
    sweep(0, 8, 4, 1, 2)
    assert len(calls) == 1


def test_harness_falls_back_to_reference_loop():
    """A sweep_fn raising UnsupportedStimulus must not lose the point:
    the harness reruns it on the reference per-access loop."""
    ms = t3d_memory_system()

    def declines(base, stride, count, warmup, measure):
        raise UnsupportedStimulus("always")

    spec = PointSpec(size=4096, stride=32, naccesses=128)
    got = run_stride_point(ms.read_cycles, spec, reset_fn=ms.reset,
                           sweep_fn=declines)
    ms2 = t3d_memory_system()
    want = run_stride_point(ms2.read_cycles, spec, reset_fn=ms2.reset,
                            sweep_fn=None)
    assert got == want
