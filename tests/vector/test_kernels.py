"""Lock-step unit checks for the vectorized tag-arithmetic kernels.

Each kernel in :mod:`repro.vector.kernels` claims to compute, over a
whole address stream at once, exactly what a cold-started stateful unit
model computes one access at a time.  These tests replay the same
streams — seeded random mixes plus the sawtooth shapes the probes
actually generate — through both spellings and require *identical*
output (same booleans, same float bits), never approximate agreement.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.node.cache import Cache
from repro.node.dram import Dram
from repro.node.tlb import Tlb
from repro.params import CacheParams, DramParams, TlbParams
from repro.vector import UnsupportedStimulus
from repro.vector.kernels import (
    direct_mapped_hit_mask,
    dram_cost_stream,
    sawtooth_addresses,
    tlb_cost_stream,
    validate_point,
)

KB = 1024


def _random_stream(rng, n, span, align=8):
    return [rng.randrange(0, span // align) * align for _ in range(n)]


def _sawtooth(base, stride, count, npasses):
    return list(range(base, base + count * stride, stride)) * npasses


STREAMS = [
    ("random-dense", lambda rng: _random_stream(rng, 600, 32 * KB)),
    ("random-sparse", lambda rng: _random_stream(rng, 600, 4096 * KB)),
    ("sawtooth-8", lambda rng: _sawtooth(0, 8, 512, 3)),
    ("sawtooth-4K", lambda rng: _sawtooth(0, 4 * KB, 64, 3)),
    ("sawtooth-64K", lambda rng: _sawtooth(160, 64 * KB, 48, 3)),
]


@pytest.fixture(params=STREAMS, ids=[name for name, _ in STREAMS])
def stream(request):
    name, make = request.param
    return make(random.Random(name))


def test_sawtooth_addresses_matches_reference_loop():
    got = sawtooth_addresses(40, 24, 7, 3)
    assert got.dtype == np.int64
    assert got.tolist() == _sawtooth(40, 24, 7, 3)


def test_direct_mapped_hit_mask_matches_cache(stream):
    params = CacheParams(size_bytes=8 * KB)
    cache = Cache(params)
    expected = [cache.access_fill(addr) for addr in stream]
    got = direct_mapped_hit_mask(np.asarray(stream, dtype=np.int64),
                                 params.line_bytes, params.num_sets)
    assert got.tolist() == expected


def test_dram_cost_stream_matches_dram(stream):
    params = DramParams()
    dram = Dram(params)
    expected = [dram.access(addr) for addr in stream]
    got = dram_cost_stream(
        np.asarray(stream, dtype=np.int64),
        interleave=params.bank_interleave_bytes, banks=params.banks,
        page_bytes=params.page_bytes, access_cycles=params.access_cycles,
        off_page_cycles=params.off_page_cycles,
        same_bank_cycles=params.same_bank_cycles)
    assert got.tolist() == expected


def test_dram_cost_stream_matches_dram_with_remote_penalties(stream):
    params = DramParams(banks=2, bank_interleave_bytes=2048 * KB,
                        page_bytes=2048 * KB)
    dram = Dram(params)
    expected = [dram.access_with(addr, 15.0, 9.0) for addr in stream]
    got = dram_cost_stream(
        np.asarray(stream, dtype=np.int64),
        interleave=params.bank_interleave_bytes, banks=params.banks,
        page_bytes=params.page_bytes, access_cycles=params.access_cycles,
        off_page_cycles=15.0, same_bank_cycles=9.0)
    assert got.tolist() == expected


# The three TLB regimes of the analytic kernel: working set below,
# exactly at, and above the TLB reach (P < cap, P == cap, P > cap).
@pytest.mark.parametrize("stride,count", [
    (8 * KB, 8),       # P = 8  < 32
    (8 * KB, 32),      # P = 32 == 32: fits without an eviction
    (8 * KB, 33),      # P = 33  > 32: every first touch misses, always
    (16 * KB, 64),     # P = 64  > 32, page-skipping stride
    (8, 512),          # sub-page stride, P = 1
    (4 * KB, 64),      # two accesses per page, P = 32 == cap
])
@pytest.mark.parametrize("npasses", [1, 3])
def test_tlb_cost_stream_matches_tlb(stride, count, npasses):
    params = TlbParams(entries=32, page_bytes=8 * KB, miss_cycles=35.0,
                       never_misses=False)
    tlb = Tlb(params)
    one_pass = list(range(0, count * stride, stride))
    expected = [tlb.translate(addr) for addr in one_pass * npasses]
    got = tlb_cost_stream(np.asarray(one_pass, dtype=np.int64), npasses,
                          page_bytes=params.page_bytes,
                          capacity=params.entries,
                          miss_cycles=params.miss_cycles)
    assert got.tolist() == expected


@pytest.mark.parametrize("bad", [
    dict(base=0, stride=0, count=8, warmup_passes=1, measure_passes=2),
    dict(base=0, stride=-8, count=8, warmup_passes=1, measure_passes=2),
    dict(base=0, stride=8, count=0, warmup_passes=1, measure_passes=2),
    dict(base=-8, stride=8, count=8, warmup_passes=1, measure_passes=2),
    dict(base=0, stride=8, count=8, warmup_passes=-1, measure_passes=2),
    dict(base=0, stride=8, count=8, warmup_passes=1, measure_passes=0),
])
def test_validate_point_rejects_non_canonical_geometry(bad):
    with pytest.raises(UnsupportedStimulus):
        validate_point(**bad)


def test_validate_point_accepts_canonical_geometry():
    validate_point(base=0, stride=8, count=1, warmup_passes=0,
                   measure_passes=1)
