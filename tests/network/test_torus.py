"""Unit tests for the 3D torus topology."""

import math

import pytest

from repro.network.torus import Torus, balanced_torus_shape
from repro.params import NetworkParams


def torus(shape):
    return Torus(NetworkParams(shape=shape))


def test_num_nodes():
    assert torus((2, 2, 2)).num_nodes == 8
    assert torus((4, 4, 2)).num_nodes == 32
    assert torus((8, 8, 4)).num_nodes == 256


def test_coords_round_trip():
    t = torus((3, 4, 5))
    for node in range(t.num_nodes):
        assert t.node_at(t.coords(node)) == node


def test_self_distance_zero():
    t = torus((4, 4, 2))
    for node in range(t.num_nodes):
        assert t.hops(node, node) == 0


def test_adjacent_nodes_one_hop():
    t = torus((4, 4, 4))
    for n in t.neighbors(0):
        assert t.hops(0, n) == 1


def test_hops_symmetric():
    t = torus((3, 4, 2))
    for a in range(t.num_nodes):
        for b in range(t.num_nodes):
            assert t.hops(a, b) == t.hops(b, a)


def test_wraparound_shortens_path():
    t = torus((8, 1, 1))
    # 0 -> 7 is one hop the short way around the ring.
    assert t.hops(0, 7) == 1
    assert t.hops(0, 4) == 4


def test_route_is_connected_and_matches_hops():
    t = torus((4, 4, 2))
    for src, dst in [(0, 31), (5, 17), (3, 3), (12, 1)]:
        path = t.route(src, dst)
        assert path[0] == src and path[-1] == dst
        assert len(path) - 1 == t.hops(src, dst)
        for a, b in zip(path, path[1:]):
            assert t.hops(a, b) == 1


def test_hop_latency_uses_param():
    t = Torus(NetworkParams(shape=(4, 1, 1), hop_cycles=2.5))
    assert t.hop_latency_cycles(0, 2) == pytest.approx(5.0)


def test_max_hops_bounded_by_half_dims():
    t = torus((8, 8, 4))
    worst = max(t.hops(0, n) for n in range(t.num_nodes))
    assert worst == 8 // 2 + 8 // 2 + 4 // 2


def test_bad_inputs_rejected():
    t = torus((2, 2, 2))
    with pytest.raises(ValueError):
        t.coords(8)
    with pytest.raises(ValueError):
        t.node_at((2, 0, 0))
    with pytest.raises(ValueError):
        Torus(NetworkParams(shape=(0, 1, 1)))


@pytest.mark.parametrize("num_pes,expected", [
    (1, (1, 1, 1)),
    (2, (2, 1, 1)),
    (4, (2, 2, 1)),
    (8, (2, 2, 2)),
    (16, (4, 2, 2)),
    (64, (4, 4, 4)),
    (256, (8, 8, 4)),
    (1024, (16, 8, 8)),
    (12, (3, 2, 2)),
])
def test_balanced_torus_shape_known_sizes(num_pes, expected):
    assert balanced_torus_shape(num_pes) == expected


def test_balanced_torus_shape_product_invariant():
    for n in range(1, 200):
        shape = balanced_torus_shape(n)
        assert math.prod(shape) == n
        assert shape == tuple(sorted(shape, reverse=True))


def test_balanced_torus_shape_rejects_nonpositive():
    with pytest.raises(ValueError):
        balanced_torus_shape(0)
    with pytest.raises(ValueError):
        balanced_torus_shape(-8)
