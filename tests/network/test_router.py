"""Unit tests for packet timing."""

import pytest

from repro.network.router import PacketTimer
from repro.params import NetworkParams


@pytest.fixture
def timer():
    return PacketTimer(NetworkParams())


def test_single_word_injection(timer):
    assert timer.injection_cycles(1) == pytest.approx(17.0)


def test_multi_word_packets_add_per_word_occupancy(timer):
    assert timer.injection_cycles(2) == pytest.approx(17.0 + 12.0)
    assert timer.injection_cycles(4) == pytest.approx(17.0 + 3 * 12.0)


def test_flight_scales_with_hops(timer):
    assert timer.flight_cycles(0) == 0.0
    assert timer.flight_cycles(4) == pytest.approx(10.0)


def test_payload_words(timer):
    assert timer.payload_words_for_bytes(1) == 1
    assert timer.payload_words_for_bytes(8) == 1
    assert timer.payload_words_for_bytes(9) == 2
    assert timer.payload_words_for_bytes(32) == 4


def test_invalid_args(timer):
    with pytest.raises(ValueError):
        timer.injection_cycles(0)
    with pytest.raises(ValueError):
        timer.flight_cycles(-1)
    with pytest.raises(ValueError):
        timer.payload_words_for_bytes(0)
