"""Integration tests for the Split-C runtime (paper sections 4, 5, 7).

Headline calibrations asserted: remote read ~128 cycles, remote write
~147 cycles, put ~45 cycles, and the functional semantics of get/put/
sync, signaling stores, and byte writes.
"""

import pytest

from repro.machine.machine import Machine
from repro.params import t3d_machine_params
from repro.splitc.gptr import GlobalPtr
from repro.splitc.runtime import SplitC, run_splitc


@pytest.fixture
def machine():
    return Machine(t3d_machine_params((2, 1, 1)))


def single_thread(machine, pe=0):
    """A SplitC runtime outside the scheduler, for cost probes."""
    ctx = machine.make_contexts()[pe]
    return SplitC(ctx)


def warm_remote(machine, pe=1, offset=0x9000):
    machine.node(pe).memsys.dram.access(offset)


def test_remote_read_costs_128_cycles(machine):
    sc = single_thread(machine)
    warm_remote(machine, 1, 0x2000)
    machine.node(1).memsys.memory.store(0x2008, 99)
    sc.ctx.clock = 10_000.0
    before = sc.ctx.clock
    value = sc.read(GlobalPtr(1, 0x2008))
    assert value == 99
    assert sc.ctx.clock - before == pytest.approx(128.0)


def test_local_read_through_global_pointer_is_cheap(machine):
    sc = single_thread(machine)
    sc.ctx.node.memsys.memory.store(0x100, 5)
    before = sc.ctx.clock
    assert sc.read(GlobalPtr(0, 0x100)) == 5
    assert sc.ctx.clock - before < 40.0


def test_remote_write_costs_147_cycles(machine):
    sc = single_thread(machine)
    warm_remote(machine, 1, 0x3000)
    sc.ctx.clock = 10_000.0
    before = sc.ctx.clock
    sc.write(GlobalPtr(1, 0x3008), "w")
    assert sc.ctx.clock - before == pytest.approx(147.0, abs=2.0)
    assert machine.node(1).memsys.memory.load(0x3008) == "w"


def test_put_steady_state_45_cycles(machine):
    sc = single_thread(machine)
    warm_remote(machine)
    now = sc.ctx.clock
    costs = []
    for i in range(32):
        before = sc.ctx.clock
        sc.put(GlobalPtr(1, 0x4000 + i * 32), i)
        costs.append(sc.ctx.clock - before)
    steady = sum(costs[8:]) / len(costs[8:])
    assert steady == pytest.approx(45.0, abs=1.0)


def test_put_then_sync_delivers(machine):
    sc = single_thread(machine)
    for i in range(4):
        sc.put(GlobalPtr(1, 0x5000 + i * 8), 10 + i)
    sc.sync()
    mem = machine.node(1).memsys.memory
    assert mem.load_range(0x5000, 4) == [10, 11, 12, 13]
    # After sync, no writes are outstanding.
    assert sc.ctx.node.remote.status_says_complete(sc.ctx.clock)


def test_get_then_sync_fills_targets(machine):
    sc = single_thread(machine)
    mem1 = machine.node(1).memsys.memory
    for i in range(8):
        mem1.store(0x6000 + i * 8, 100 + i)
    dst = sc.ctx.node.heap.alloc(64)
    for i in range(8):
        sc.get(GlobalPtr(1, 0x6000 + i * 8), dst + i * 8)
    assert sc.pending_gets == 8
    sc.sync()
    assert sc.pending_gets == 0
    sc.ctx.memory_barrier()        # commit the local stores
    assert sc.ctx.node.memsys.memory.load_range(dst, 8) == list(range(100, 108))


def test_get_pipelines_cheaper_than_reads(machine):
    warm_remote(machine, 1, 0x7000)
    # 16 gets + sync vs 16 blocking reads.
    sc1 = single_thread(machine)
    sc1.ctx.clock = 10_000.0
    before = sc1.ctx.clock
    dst = sc1.ctx.node.heap.alloc(16 * 8)
    for i in range(16):
        sc1.get(GlobalPtr(1, 0x7000 + i * 8), dst + i * 8)
    sc1.sync()
    get_cost = sc1.ctx.clock - before

    machine2 = Machine(t3d_machine_params((2, 1, 1)))
    warm_remote(machine2, 1, 0x7000)
    sc2 = single_thread(machine2)
    sc2.ctx.clock = 10_000.0
    before = sc2.ctx.clock
    for i in range(16):
        sc2.read(GlobalPtr(1, 0x7000 + i * 8))
    read_cost = sc2.ctx.clock - before

    assert get_cost < 0.75 * read_cost


def test_get_queue_overflow_auto_drains(machine):
    sc = single_thread(machine)
    dst = sc.ctx.node.heap.alloc(32 * 8)
    for i in range(32):                    # twice the queue depth
        sc.get(GlobalPtr(1, 0x8000 + i * 8), dst + i * 8)
    sc.sync()
    assert sc.pending_gets == 0


def test_gets_of_local_pointers_copy_immediately(machine):
    sc = single_thread(machine)
    sc.ctx.node.memsys.memory.store(0x900, "local")
    dst = sc.ctx.node.heap.alloc(8)
    sc.get(GlobalPtr(0, 0x900), dst)
    assert sc.pending_gets == 0
    sc.ctx.memory_barrier()
    assert sc.ctx.node.memsys.memory.load(dst) == "local"


def test_spmd_store_and_all_store_sync(machine):
    """Bulk-synchronous neighbor exchange: PE i stores to PE (i+1)%P."""

    def program(sc):
        base = sc.all_alloc(8)
        neighbor = (sc.my_pe + 1) % sc.num_pes
        sc.store(GlobalPtr(neighbor, base), 1000 + sc.my_pe)
        yield from sc.all_store_sync()
        return sc.ctx.local_read(base)

    results, _ = run_splitc(machine, program)
    assert results == [1001, 1000]


def test_spmd_store_sync_message_driven(machine):
    """PE 1 proceeds as soon as its boundary data (2 words) arrives."""

    def program(sc):
        base = sc.all_alloc(16)
        if sc.my_pe == 0:
            sc.store(GlobalPtr(1, base), "a")
            sc.store(GlobalPtr(1, base + 8), "b")
            return None
        yield from sc.store_sync(16)
        return (sc.ctx.local_read(base), sc.ctx.local_read(base + 8))

    results, _ = run_splitc(machine, program)
    assert results[1] == ("a", "b")


def test_read_byte_and_racy_write_byte(machine):
    sc = single_thread(machine)
    gp = GlobalPtr(1, 0xA00)
    sc.write(gp, 0)
    sc.write_byte_racy(gp, 2, 0xAB)
    assert sc.read_byte(gp, 2) == 0xAB
    assert sc.read_byte(gp, 0) == 0


def test_racy_byte_writes_clobber_each_other(machine):
    """The section 4.5 hazard: two PEs read-modify-write one word."""

    def program(sc):
        base = sc.all_alloc(8)
        target = GlobalPtr(0, base)
        if sc.my_pe == 0:
            sc.ctx.local_write(base, 0)
            sc.ctx.memory_barrier()
        yield from sc.barrier()
        # Both PEs read the word (both see 0), then merge their byte.
        word = sc.read(target)
        from repro.node.alpha import merge_byte_into_word
        merged = merge_byte_into_word(int(word), 0xAA if sc.my_pe == 0
                                      else 0xBB, sc.my_pe)
        yield from sc.barrier()            # both hold stale words now
        sc.write(target, merged)
        yield from sc.barrier()
        return sc.read(target)

    results, _ = run_splitc(machine, program)
    final = int(results[0])
    # One byte survived, the other was clobbered: never both.
    both = (final & 0xFF == 0xAA) and ((final >> 8) & 0xFF == 0xBB)
    assert not both


def test_read_mechanism_cached_ablation(machine):
    """The rejected cached-read implementation still returns correct
    values (flush keeps it coherent) but costs more per scalar read."""
    from repro.splitc.codegen import CodegenPlan

    plan = CodegenPlan(read_mechanism="cached")
    ctx = machine.make_contexts()[0]
    sc = SplitC(ctx, plan=plan)
    warm_remote(machine, 1, 0xB00)
    machine.node(1).memsys.memory.store(0xB08, 7)
    sc.ctx.clock = 10_000.0
    before = sc.ctx.clock
    assert sc.read(GlobalPtr(1, 0xB08)) == 7
    cached_cost = sc.ctx.clock - before
    assert cached_cost > 128.0             # worse than uncached
    # Coherence: owner writes, reader still sees the new value.
    machine.node(1).memsys.memory.store(0xB08, 8)
    assert sc.read(GlobalPtr(1, 0xB08)) == 8


def test_alloc_and_gptr_helpers(machine):
    sc = single_thread(machine)
    gp = sc.alloc(64)
    assert gp.pe == 0
    assert gp.addr >= 0x1000
    gp2 = sc.gptr(1, 0x500)
    assert gp2 == GlobalPtr(1, 0x500)


def test_run_splitc_propagates_plan(machine):
    from repro.splitc.codegen import CodegenPlan

    plan = CodegenPlan(annex_skip_when_unchanged=True)

    def program(sc):
        return sc.plan.annex_skip_when_unchanged
        yield  # pragma: no cover

    results, runtimes = run_splitc(machine, program, plan=plan)
    assert all(results)
    assert all(sc.annex_policy.skip_when_unchanged for sc in runtimes)
