"""Tests for locks and queues built on the shell atomics."""

import pytest

from repro.machine.machine import Machine
from repro.params import t3d_machine_params
from repro.splitc.gptr import GlobalPtr
from repro.splitc.runtime import run_splitc
from repro.splitc.sync_objects import SpinLock, TicketLock, WorkQueue


@pytest.fixture
def machine():
    return Machine(t3d_machine_params((2, 2, 1)))


def test_spinlock_protects_a_counter(machine):
    """Increment a shared counter under the lock: no updates lost
    (contrast with the racy histogram)."""
    rounds = 5

    def program(sc):
        lock = SpinLock(sc, owner=0)
        counter = sc.all_alloc(8)
        target = GlobalPtr(0, counter)
        if sc.my_pe == 0:
            sc.ctx.node.memsys.memory.store(counter, 0)
        yield from sc.barrier()
        for _ in range(rounds):
            yield from lock.acquire()
            value = sc.read(target)
            sc.write(target, int(value) + 1)
            lock.release()
        yield from sc.barrier()
        return sc.read(target)

    results, _ = run_splitc(machine, program)
    assert all(r == 4 * rounds for r in results)


def test_spinlock_mutual_exclusion_trace(machine):
    """Critical sections never overlap in simulated time."""
    intervals = []

    def program(sc):
        lock = SpinLock(sc, owner=1)
        yield from sc.barrier()
        for _ in range(3):
            yield from lock.acquire()
            start = sc.ctx.clock
            sc.ctx.charge(500.0)          # critical section work
            intervals.append((start, sc.ctx.clock, sc.my_pe))
            lock.release()
        return None

    run_splitc(machine, program)
    intervals.sort()
    for (s1, e1, p1), (s2, e2, p2) in zip(intervals, intervals[1:]):
        assert s2 >= e1 - 1e-9, (p1, p2)


def test_ticket_lock_is_fifo(machine):
    order = []

    def program(sc):
        lock = TicketLock(sc, owner=0)
        yield from sc.barrier()
        # Stagger arrival so ticket order is deterministic.
        sc.ctx.charge(1_000.0 * sc.my_pe)
        ticket = yield from lock.acquire()
        order.append((ticket, sc.my_pe))
        sc.ctx.charge(100.0)
        lock.release()
        return ticket

    results, _ = run_splitc(machine, program)
    assert sorted(results) == [0, 1, 2, 3]
    tickets = [t for t, _pe in order]
    assert tickets == sorted(tickets)     # served in ticket order


def test_work_queue_delivers_all_tasks(machine):
    def program(sc):
        queue = WorkQueue(sc, owner=0, slots=32)
        yield from sc.barrier()
        if sc.my_pe != 0:
            for i in range(4):
                queue.push(f"task-{sc.my_pe}-{i}")
            return None
        got = []
        for _ in range(12):
            task = yield from queue.pop()
            got.append(task)
        return got

    results, _ = run_splitc(machine, program)
    got = results[0]
    expected = {f"task-{pe}-{i}" for pe in (1, 2, 3) for i in range(4)}
    assert set(got) == expected
    assert len(got) == 12


def test_work_queue_owner_can_push_too(machine):
    def program(sc):
        queue = WorkQueue(sc, owner=0, slots=8)
        yield from sc.barrier()
        if sc.my_pe == 0:
            queue.push("local")
            task = yield from queue.pop()
            return task
        return None

    results, _ = run_splitc(machine, program)
    assert results[0] == "local"


def test_work_queue_try_pop_empty(machine):
    def program(sc):
        queue = WorkQueue(sc, owner=0)
        yield from sc.barrier()
        if sc.my_pe == 0:
            return queue.try_pop()
        return "n/a"

    results, _ = run_splitc(machine, program)
    assert results[0] is None


def test_work_queue_only_owner_pops(machine):
    def program(sc):
        queue = WorkQueue(sc, owner=0)
        yield from sc.barrier()
        if sc.my_pe == 1:
            try:
                queue.try_pop()
            except RuntimeError:
                return "rejected"
        return None

    results, _ = run_splitc(machine, program)
    assert results[1] == "rejected"
