"""Tests for execution traces and the ASCII timeline."""

import pytest

from repro.machine.machine import Machine
from repro.params import t3d_machine_params
from repro.splitc.gptr import GlobalPtr
from repro.splitc.runtime import run_splitc
from repro.splitc.trace import Span, SpanTrace, render_timeline


@pytest.fixture
def machine():
    return Machine(t3d_machine_params((2, 1, 1)))


def test_tracing_off_by_default(machine):
    def program(sc):
        sc.read(GlobalPtr(1, 0))
        return None
        yield  # pragma: no cover

    _, runtimes = run_splitc(machine, program)
    assert runtimes[0].trace is None


def test_spans_cover_operations(machine):
    def program(sc):
        sc.read(GlobalPtr(1, 0))
        sc.put(GlobalPtr(1, 8), 1)
        sc.sync()
        yield from sc.barrier()
        return None

    _, runtimes = run_splitc(machine, program, trace=True)
    trace = runtimes[0].trace
    ops = [span.op for span in trace.spans]
    assert "read (remote)" in ops
    assert "put (issue)" in ops
    assert "sync" in ops
    assert "barrier" in ops
    # Spans are well-formed and within the run.
    for span in trace.spans:
        assert span.end >= span.start >= 0.0
        assert span.duration >= 0.0


def test_active_at_picks_covering_span():
    trace = SpanTrace()
    trace.add("a", 0.0, 100.0)
    trace.add("b", 100.0, 200.0)
    assert trace.active_at(50.0) == "a"
    assert trace.active_at(150.0) == "b"
    assert trace.active_at(250.0) is None
    assert trace.end_time == 200.0


def test_nested_spans_latest_wins():
    trace = SpanTrace()
    trace.add("outer", 0.0, 100.0)
    trace.add("inner", 20.0, 40.0)
    assert trace.active_at(30.0) == "inner"
    assert trace.active_at(60.0) == "outer"


def test_render_timeline_layout(machine):
    def program(sc):
        for i in range(4):
            sc.read(GlobalPtr(1 - sc.my_pe, i * 8))
        yield from sc.barrier()
        return None

    _, runtimes = run_splitc(machine, program, trace=True)
    text = render_timeline([sc.trace for sc in runtimes], width=40,
                           title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert lines[1].startswith("pe0  |")
    assert lines[2].startswith("pe1  |")
    assert len(lines[1]) == len(lines[2])
    assert "cycles/column" in lines[3]
    assert "barrier" in lines[-1]          # legend


def test_render_empty():
    assert "(no spans recorded)" in render_timeline([SpanTrace()])


def test_barrier_skew_visible_in_timeline(machine):
    """A straggler makes the others' barrier spans long — the timeline
    shows the wait."""
    def program(sc):
        if sc.my_pe == 0:
            sc.ctx.charge(10_000.0)       # straggler
        yield from sc.barrier()
        return None

    _, runtimes = run_splitc(machine, program, trace=True)
    barrier_spans = {
        sc.ctx.pe: next(s for s in sc.trace.spans if s.op == "barrier")
        for sc in runtimes
    }
    assert barrier_spans[1].duration > 9_000.0   # waited for pe 0
    assert barrier_spans[0].duration < 1_000.0
