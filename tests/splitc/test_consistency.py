"""Tests for global/local consistency control (paper section 4.5)."""

import pytest

from repro.machine.machine import Machine
from repro.params import t3d_machine_params
from repro.splitc.consistency import PrivateRegion, as_local_offset
from repro.splitc.gptr import GlobalPtr
from repro.splitc.runtime import SplitC


@pytest.fixture
def machine():
    return Machine(t3d_machine_params((2, 1, 1)))


def make_sc(machine, pe=0):
    return SplitC(machine.make_contexts()[pe])


def test_as_local_offset_extracts_address(machine):
    sc = make_sc(machine)
    gp = GlobalPtr(0, 0x1234)
    assert as_local_offset(sc, gp) == 0x1234


def test_as_local_offset_rejects_remote_pointers(machine):
    sc = make_sc(machine)
    with pytest.raises(ValueError):
        as_local_offset(sc, GlobalPtr(1, 0x100))


def test_local_pointer_write_is_buffered_and_remotely_invisible(machine):
    """The exposure itself: a local-pointer store sits in the write
    buffer, so another processor's remote read sees the old value."""
    sc = make_sc(machine)
    machine.node(0).memsys.memory.store(0x500, "old")
    offset = as_local_offset(sc, GlobalPtr(0, 0x500))
    sc.ctx.local_write(offset, "new")
    # Remote read from PE 1 goes to memory, not PE 0's write buffer.
    _, seen = machine.node(1).remote.uncached_read(
        sc.ctx.clock, 0, 0x500)
    assert seen == "old"


def test_private_region_restores_visibility(machine):
    sc = make_sc(machine)
    machine.node(0).memsys.memory.store(0x600, "old")
    with PrivateRegion(sc):
        offset = as_local_offset(sc, GlobalPtr(0, 0x600))
        sc.ctx.local_write(offset, "new")
    # The region exit drained the buffer: now the remote read is fresh.
    _, seen = machine.node(1).remote.uncached_read(
        sc.ctx.clock, 0, 0x600)
    assert seen == "new"


def test_private_region_orders_prior_writes_before_reads(machine):
    """Entry barrier: writes buffered before the region cannot be
    overtaken by reads (to synonyms) inside it."""
    sc = make_sc(machine)
    node = machine.node(0)
    node.memsys.memory.store(0x700, "old")
    synonym = 0x700 | (1 << 32)
    sc.ctx.local_write(0x700, "new")
    # Without the region, a synonym read would be stale:
    _, stale = node.memsys.read(sc.ctx.clock, synonym)
    assert stale == "old"
    with PrivateRegion(sc):
        _, fresh = node.memsys.read(sc.ctx.clock, synonym)
        assert fresh == "new"


def test_private_region_charges_barrier_costs(machine):
    sc = make_sc(machine)
    before = sc.ctx.clock
    with PrivateRegion(sc):
        pass
    assert sc.ctx.clock >= before + 2 * 4.0   # two mb instructions


def test_private_region_propagates_exceptions(machine):
    sc = make_sc(machine)
    with pytest.raises(RuntimeError):
        with PrivateRegion(sc):
            raise RuntimeError("boom")
