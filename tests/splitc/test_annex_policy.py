"""Unit tests for Annex management policies (paper section 3.4)."""

import pytest

from repro.params import AnnexParams
from repro.shell.annex import DtbAnnex, ReadMode
from repro.splitc.annex_policy import MultiAnnexPolicy, SingleAnnexPolicy


@pytest.fixture
def annex():
    return DtbAnnex(AnnexParams(), my_pe=0)


def test_single_conservative_reloads_every_access(annex):
    policy = SingleAnnexPolicy()
    _, c1 = policy.setup(annex, 3)
    _, c2 = policy.setup(annex, 3)
    assert c1 == c2 == pytest.approx(23.0)


def test_single_optimized_skips_unchanged(annex):
    policy = SingleAnnexPolicy(skip_when_unchanged=True)
    index, c1 = policy.setup(annex, 3)
    index2, c2 = policy.setup(annex, 3)
    assert c1 == pytest.approx(23.0)
    assert c2 == 0.0
    assert index == index2 == 1
    _, c3 = policy.setup(annex, 4)
    assert c3 == pytest.approx(23.0)


def test_local_pe_uses_entry_zero_for_free(annex):
    policy = SingleAnnexPolicy()
    index, cycles = policy.setup(annex, 0)
    assert index == 0
    assert cycles == 0.0


def test_single_never_creates_remote_synonyms(annex):
    policy = SingleAnnexPolicy()
    for pe in [1, 2, 3, 2, 1]:
        policy.setup(annex, pe)
    groups = annex.synonym_groups()
    # Unconfigured entries all name PE 0 (local); no *remote* PE is
    # named by two entries.
    assert all(pe == 0 for pe in groups)


def test_single_mode_change_forces_reload(annex):
    policy = SingleAnnexPolicy(skip_when_unchanged=True)
    policy.setup(annex, 3, ReadMode.UNCACHED)
    _, cycles = policy.setup(annex, 3, ReadMode.CACHED)
    assert cycles == pytest.approx(23.0)


def test_multi_hit_pays_only_table_lookup(annex):
    policy = MultiAnnexPolicy(num_registers=4)
    _, miss = policy.setup(annex, 5)
    assert miss == pytest.approx(10.0 + 23.0)
    _, hit = policy.setup(annex, 5)
    assert hit == pytest.approx(10.0)


def test_multi_saving_is_small():
    """The paper's point: a table hit saves only 13 cycles over a
    plain reload (23 - 10)."""
    annex = DtbAnnex(AnnexParams(), my_pe=0)
    policy = MultiAnnexPolicy(num_registers=4)
    _, miss = policy.setup(annex, 5)
    _, hit = policy.setup(annex, 5)
    single = SingleAnnexPolicy()
    _, reload_cost = single.setup(annex, 5)
    assert reload_cost - hit == pytest.approx(13.0)


def test_multi_replacement_cycles_registers(annex):
    policy = MultiAnnexPolicy(num_registers=2)
    i1, _ = policy.setup(annex, 1)
    i2, _ = policy.setup(annex, 2)
    assert {i1, i2} == {1, 2}
    i3, cycles = policy.setup(annex, 3)     # evicts PE 1's register
    assert i3 == i1
    _, again = policy.setup(annex, 1)       # PE 1 must reload
    assert again == pytest.approx(33.0)


def test_multi_flagged_as_synonym_risk():
    assert MultiAnnexPolicy.synonym_risk
    assert not SingleAnnexPolicy.synonym_risk


def test_multi_reset(annex):
    policy = MultiAnnexPolicy()
    policy.setup(annex, 5)
    policy.reset()
    _, cycles = policy.setup(annex, 5)
    assert cycles == pytest.approx(33.0)    # cold again


def test_multi_validates_registers():
    with pytest.raises(ValueError):
        MultiAnnexPolicy(num_registers=0)


def test_os_managed_first_touch_faults_then_free(annex):
    from repro.splitc.annex_policy import OsManagedAnnexPolicy

    policy = OsManagedAnnexPolicy()
    index, fault = policy.setup(annex, 7)
    assert fault == pytest.approx(3_750.0)
    index2, hit = policy.setup(annex, 7)
    assert hit == 0.0 and index2 == index
    assert policy.faults == 1


def test_os_managed_amortizes_but_faults_dominate_scattered(annex):
    """The footnote-2 trade-off in one place: repeated access to a few
    processors is free after the first touch, but touching more
    processors than the Annex holds faults every time."""
    from repro.splitc.annex_policy import OsManagedAnnexPolicy

    few = OsManagedAnnexPolicy(num_registers=4)
    total_few = sum(few.setup(annex, 1 + (i % 2))[1] for i in range(100))
    assert total_few == pytest.approx(2 * 3_750.0)   # two first touches

    scattered = OsManagedAnnexPolicy(num_registers=4)
    total_scattered = sum(scattered.setup(annex, 1 + (i % 8))[1]
                          for i in range(100))
    # Eight live processors round-robin through four slots: every
    # access faults.  Compare: the compiler-managed reload would cost
    # 23 cycles/access.
    assert total_scattered == pytest.approx(100 * 3_750.0)
    assert total_scattered > 100 * 23.0


def test_os_managed_local_pe_never_faults(annex):
    from repro.splitc.annex_policy import OsManagedAnnexPolicy

    policy = OsManagedAnnexPolicy()
    index, cost = policy.setup(annex, annex.my_pe)
    assert (index, cost) == (0, 0.0)
    assert policy.faults == 0


def test_os_managed_reset(annex):
    from repro.splitc.annex_policy import OsManagedAnnexPolicy

    policy = OsManagedAnnexPolicy()
    policy.setup(annex, 5)
    policy.reset()
    _, cost = policy.setup(annex, 5)
    assert cost == pytest.approx(3_750.0)
