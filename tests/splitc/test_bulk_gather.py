"""Tests for strided gathers (section 6.2's strided BLT support)."""

import pytest

from repro.machine.machine import Machine
from repro.params import t3d_machine_params
from repro.splitc import bulk
from repro.splitc.gptr import GlobalPtr
from repro.splitc.runtime import SplitC

KB = 1024


def make_sc():
    machine = Machine(t3d_machine_params((2, 1, 1)))
    return machine, SplitC(machine.make_contexts()[0])


def fill_strided(machine, base, nelems, stride, pe=1):
    mem = machine.node(pe).memsys.memory
    for i in range(nelems):
        mem.store(base + i * stride, 100 + i)


def test_gather_moves_the_right_elements():
    machine, sc = make_sc()
    fill_strided(machine, 0x1000, 16, 256)
    sc.bulk_gather(0x80000, GlobalPtr(1, 0x1000), 16, 256)
    sc.ctx.memory_barrier()
    got = sc.ctx.node.memsys.memory.load_range(0x80000, 16)
    assert got == [100 + i for i in range(16)]


def test_gather_mechanisms_agree_functionally():
    for mech in (bulk.bulk_gather_prefetch, bulk.bulk_gather_blt):
        machine, sc = make_sc()
        fill_strided(machine, 0x2000, 8, 64)
        mech(sc, 0x90000, GlobalPtr(1, 0x2000), 8, 64)
        sc.ctx.memory_barrier()
        got = sc.ctx.node.memsys.memory.load_range(0x90000, 8)
        assert got == [100 + i for i in range(8)], mech.__name__


def test_small_gather_avoids_blt():
    machine, sc = make_sc()
    sc.bulk_gather(0x80000, GlobalPtr(1, 0), 32, 128)
    assert machine.node(0).blt.transfers_started == 0
    assert machine.node(0).prefetch.issues == 32


def test_large_gather_uses_blt():
    machine, sc = make_sc()
    nelems = 4 * KB          # 32 KB payload, above the 16 KB crossover
    sc.bulk_gather(0x100000, GlobalPtr(1, 0), nelems, 64)
    assert machine.node(0).blt.transfers_started == 1


def test_dispatch_beats_both_straw_men_at_their_weak_points():
    def cost(mech, nelems, stride):
        machine, sc = make_sc()
        before = sc.ctx.clock
        mech(sc, 0x100000, GlobalPtr(1, 0), nelems, stride)
        return sc.ctx.clock - before

    # Small gather: dispatch (prefetch) crushes forced BLT.
    small_dispatch = cost(bulk.bulk_gather, 32, 128)
    small_blt = cost(bulk.bulk_gather_blt, 32, 128)
    assert small_dispatch < small_blt / 5
    # Large gather: dispatch (BLT) beats forced prefetch.
    large_dispatch = cost(bulk.bulk_gather, 4 * KB, 64)
    large_prefetch = cost(bulk.bulk_gather_prefetch, 4 * KB, 64)
    assert large_dispatch < large_prefetch


def test_prefetch_pipe_hides_the_off_page_penalty():
    """Page-missing strides extend each round trip by ~15 cycles, but
    the 16-deep pipe keeps them overlapped: per-element cost barely
    moves — the same latency tolerance Figure 6 demonstrates."""
    def per_elem(stride):
        machine, sc = make_sc()
        before = sc.ctx.clock
        bulk.bulk_gather_prefetch(sc, 0x100000, GlobalPtr(1, 0),
                                  64, stride)
        return (sc.ctx.clock - before) / 64

    smooth = per_elem(64)
    paged = per_elem(16 * KB)
    assert paged < smooth + 4.0
    # A *blocking* gather pays the penalty in full on every element.
    machine, sc = make_sc()
    before = sc.ctx.clock
    for i in range(64):
        sc.read(GlobalPtr(1, i * 16 * KB))
    blocking_paged = (sc.ctx.clock - before) / 64
    assert blocking_paged > smooth + 80.0


def test_contiguous_gather_is_plain_bulk_read():
    machine, sc = make_sc()
    fill_strided(machine, 0x3000, 8, 8)
    sc.bulk_gather(0xA0000, GlobalPtr(1, 0x3000), 8, 8)
    sc.ctx.memory_barrier()
    assert sc.ctx.node.memsys.memory.load_range(0xA0000, 8) == [
        100 + i for i in range(8)]


def test_local_gather():
    machine, sc = make_sc()
    mem = machine.node(0).memsys.memory
    for i in range(4):
        mem.store(0x4000 + i * 128, i)
    sc.bulk_gather(0xB0000, GlobalPtr(0, 0x4000), 4, 128)
    sc.ctx.memory_barrier()
    assert mem.load_range(0xB0000, 4) == [0, 1, 2, 3]
    assert sc.ctx.node.remote.reads == 0


def test_bad_args():
    machine, sc = make_sc()
    with pytest.raises(ValueError):
        bulk.bulk_gather_prefetch(sc, 0, GlobalPtr(1, 0), 0, 64)
