"""Tests for the Split-C collectives."""

import pytest

from repro.machine.machine import Machine
from repro.params import t3d_machine_params
from repro.splitc.collectives import (
    all_gather,
    all_reduce,
    broadcast,
    reduce,
    scan,
)
from repro.splitc.runtime import run_splitc


@pytest.fixture
def machine():
    return Machine(t3d_machine_params((2, 2, 2)))


def test_broadcast(machine):
    def program(sc):
        value = yield from broadcast(sc, root=3, value=(
            "payload" if sc.my_pe == 3 else None))
        return value

    results, _ = run_splitc(machine, program)
    assert results == ["payload"] * 8


def test_reduce_sum(machine):
    def program(sc):
        return (yield from reduce(sc, root=0, value=sc.my_pe + 1))

    results, _ = run_splitc(machine, program)
    assert results[0] == sum(range(1, 9))
    assert all(r is None for r in results[1:])


def test_reduce_custom_op(machine):
    def program(sc):
        return (yield from reduce(sc, root=2, value=sc.my_pe,
                                  op=max))

    results, _ = run_splitc(machine, program)
    assert results[2] == 7


def test_all_gather(machine):
    def program(sc):
        return (yield from all_gather(sc, 10 * sc.my_pe))

    results, _ = run_splitc(machine, program)
    expected = [10 * pe for pe in range(8)]
    assert all(r == expected for r in results)


def test_all_reduce(machine):
    def program(sc):
        return (yield from all_reduce(sc, sc.my_pe + 1))

    results, _ = run_splitc(machine, program)
    assert results == [36] * 8


def test_scan_exclusive(machine):
    def program(sc):
        return (yield from scan(sc, sc.my_pe + 1))

    results, _ = run_splitc(machine, program)
    assert results[0] is None
    assert results[1:] == [1, 3, 6, 10, 15, 21, 28]


def test_scan_inclusive(machine):
    def program(sc):
        return (yield from scan(sc, 1, exclusive=False))

    results, _ = run_splitc(machine, program)
    assert results == [1, 2, 3, 4, 5, 6, 7, 8]


def test_collectives_compose(machine):
    """A realistic sequence: gather sizes, broadcast a decision,
    reduce a checksum — scratch reuse must not corrupt values."""

    def program(sc):
        sizes = yield from all_gather(sc, sc.my_pe * 2)
        total = yield from all_reduce(sc, sizes[sc.my_pe])
        decision = yield from broadcast(
            sc, root=0, value=("go" if sc.my_pe == 0 else None))
        check = yield from reduce(sc, root=0, value=total)
        return (total, decision, check)

    results, _ = run_splitc(machine, program)
    assert all(r[0] == 56 for r in results)
    assert all(r[1] == "go" for r in results)
    assert results[0][2] == 56 * 8


def test_collective_costs_scale_with_pes():
    """Flat collectives cost O(P) stores on the busiest processor."""
    def program(sc):
        before = sc.ctx.clock
        yield from all_gather(sc, 1)
        return sc.ctx.clock - before

    small, _ = run_splitc(Machine(t3d_machine_params((2, 1, 1))), program)
    large, _ = run_splitc(Machine(t3d_machine_params((2, 2, 2))), program)
    assert max(large) > max(small)
