"""Unit tests for global pointers (paper sections 3.1, 3.3)."""

import pytest

from repro.splitc.gptr import ADDR_MASK, GlobalPtr, PE_SHIFT


def test_encode_layout():
    gp = GlobalPtr(pe=3, addr=0x1000)
    assert gp.encode() == (3 << 48) | 0x1000


def test_encode_decode_round_trip():
    for pe, addr in [(0, 0), (7, 0x1234), (65535, ADDR_MASK)]:
        gp = GlobalPtr(pe, addr)
        assert GlobalPtr.decode(gp.encode()) == gp


def test_same_size_as_local_pointer():
    gp = GlobalPtr(pe=65535, addr=ADDR_MASK)
    assert gp.encode() < (1 << 64)


def test_local_add_stays_on_processor():
    gp = GlobalPtr(2, 0x100)
    moved = gp.local_add(64)
    assert moved.pe == 2
    assert moved.addr == 0x140


def test_local_add_never_overflows_into_pe_bits():
    # Section 3.3: local arithmetic on a global pointer is exactly
    # local-pointer arithmetic for any valid offset.
    gp = GlobalPtr(5, 0x7FFF_0000)
    assert gp.local_add(0x10000).pe == 5


def test_global_add_processor_varies_fastest():
    gp = GlobalPtr(0, 0x100)
    assert gp.global_add(1, num_pes=4) == GlobalPtr(1, 0x100)
    assert gp.global_add(3, num_pes=4) == GlobalPtr(3, 0x100)


def test_global_add_wraps_to_next_offset():
    gp = GlobalPtr(0, 0x100)
    wrapped = gp.global_add(4, num_pes=4)
    assert wrapped == GlobalPtr(0, 0x108)
    assert gp.global_add(7, num_pes=4) == GlobalPtr(3, 0x108)


def test_global_add_from_nonzero_pe():
    gp = GlobalPtr(2, 0)
    assert gp.global_add(3, num_pes=4) == GlobalPtr(1, 8)


def test_global_add_elem_bytes():
    gp = GlobalPtr(0, 0)
    assert gp.global_add(4, num_pes=4, elem_bytes=16).addr == 16


def test_local_diff():
    a = GlobalPtr(1, 0x200)
    b = GlobalPtr(1, 0x180)
    assert a.local_diff(b) == 0x80
    with pytest.raises(ValueError):
        a.local_diff(GlobalPtr(2, 0x180))


def test_null():
    assert GlobalPtr.null().is_null()
    assert not GlobalPtr.null()
    assert GlobalPtr(0, 8)
    assert not GlobalPtr(0, 8).is_null()


def test_is_local_to():
    gp = GlobalPtr(3, 0)
    assert gp.is_local_to(3)
    assert not gp.is_local_to(0)


def test_field_bounds():
    with pytest.raises(ValueError):
        GlobalPtr(1 << 16, 0)
    with pytest.raises(ValueError):
        GlobalPtr(0, 1 << 48)
    with pytest.raises(ValueError):
        GlobalPtr.decode(1 << 64)
