"""Unit tests for spread arrays (paper sections 1.1, 3.1)."""

import pytest

from repro.machine.machine import Machine
from repro.params import t3d_machine_params
from repro.splitc.runtime import run_splitc
from repro.splitc.spread import SpreadArray


@pytest.fixture
def machine():
    return Machine(t3d_machine_params((2, 2, 1)))


def test_cyclic_layout(machine):
    def program(sc):
        arr = SpreadArray(sc, 10)
        return [(arr.owner(i), arr.local_offset(i)) for i in range(10)]
        yield  # pragma: no cover

    results, _ = run_splitc(machine, program)
    layout = results[0]
    assert [pe for pe, _ in layout] == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]
    # Element 4 sits one word above element 0 on the same processor.
    assert layout[4][1] == layout[0][1] + 8
    # All threads agree (symmetric allocation).
    assert all(r == layout for r in results)


def test_write_read_round_trip_across_pes(machine):
    def program(sc):
        arr = SpreadArray(sc, 8)
        for i in arr.my_indices():
            arr.write(i, 10 * i)
        yield from sc.barrier()
        return [arr.read(i) for i in range(8)]

    results, _ = run_splitc(machine, program)
    for values in results:
        assert values == [0, 10, 20, 30, 40, 50, 60, 70]


def test_put_then_sync(machine):
    def program(sc):
        arr = SpreadArray(sc, 4)
        if sc.my_pe == 0:
            for i in range(4):
                arr.put(i, i + 1)
            sc.sync()
        yield from sc.barrier()
        return arr.read(sc.my_pe)

    results, _ = run_splitc(machine, program)
    assert results == [1, 2, 3, 4]


def test_my_indices_partition(machine):
    def program(sc):
        arr = SpreadArray(sc, 11)
        return list(arr.my_indices())
        yield  # pragma: no cover

    results, _ = run_splitc(machine, program)
    seen = sorted(i for indices in results for i in indices)
    assert seen == list(range(11))


def test_pointer_matches_owner_and_offset(machine):
    def program(sc):
        arr = SpreadArray(sc, 6)
        gp = arr.pointer(5)
        return (gp.pe, gp.addr == arr.local_offset(5))
        yield  # pragma: no cover

    results, _ = run_splitc(machine, program)
    assert results[0] == (1, True)


def test_bounds(machine):
    def program(sc):
        arr = SpreadArray(sc, 4)
        try:
            arr.owner(4)
        except IndexError:
            return "caught"
        return "missed"
        yield  # pragma: no cover

    results, _ = run_splitc(machine, program)
    assert all(r == "caught" for r in results)


def test_bulk_read_range(machine):
    def program(sc):
        arr = SpreadArray(sc, 20)
        for i in arr.my_indices():
            sc.ctx.node.memsys.memory.store(arr.local_offset(i), 100 + i)
        yield from sc.barrier()
        dst = sc.ctx.node.heap.alloc(20 * 8)
        arr.bulk_read_range(3, 17, dst)
        sc.ctx.memory_barrier()
        return sc.ctx.node.memsys.memory.load_range(dst, 14)

    results, _ = run_splitc(machine, program)
    assert all(r == [100 + i for i in range(3, 17)] for r in results)


def test_bulk_read_full_and_empty_ranges(machine):
    def program(sc):
        arr = SpreadArray(sc, 8)
        for i in arr.my_indices():
            sc.ctx.node.memsys.memory.store(arr.local_offset(i), i * i)
        yield from sc.barrier()
        dst = sc.ctx.node.heap.alloc(8 * 8)
        arr.bulk_read_range(0, 8, dst)
        arr.bulk_read_range(5, 5, dst)       # no-op
        sc.ctx.memory_barrier()
        return sc.ctx.node.memsys.memory.load_range(dst, 8)

    results, _ = run_splitc(machine, program)
    assert results[0] == [i * i for i in range(8)]


def test_bulk_read_range_bounds(machine):
    def program(sc):
        arr = SpreadArray(sc, 4)
        try:
            arr.bulk_read_range(0, 5, 0x100000)
        except IndexError:
            return "caught"
        return "missed"
        yield  # pragma: no cover

    results, _ = run_splitc(machine, program)
    assert all(r == "caught" for r in results)
