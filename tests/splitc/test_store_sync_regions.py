"""Tests for region-scoped store_sync (the message-driven extension)."""

import pytest

from repro.machine.machine import Machine
from repro.params import t3d_machine_params
from repro.splitc.gptr import GlobalPtr
from repro.splitc.runtime import run_splitc


@pytest.fixture
def machine():
    return Machine(t3d_machine_params((2, 2, 1)))


def test_region_scoped_wait_ignores_other_regions(machine):
    """PE 0 waits for bytes in region B; stores into region A must not
    satisfy it."""

    def program(sc):
        region_a = sc.all_alloc(64)
        region_b = sc.all_alloc(64)
        if sc.my_pe == 0:
            yield from sc.store_sync(8, region=(region_b, region_b + 64))
            sc.ctx.memory_barrier()
            return sc.ctx.local_read(region_b)
        if sc.my_pe == 1:
            # Noise into region A first, then the real payload into B.
            for i in range(4):
                sc.store(GlobalPtr(0, region_a + i * 8), "noise")
            sc.ctx.charge(5_000.0)          # delay the payload
            sc.store(GlobalPtr(0, region_b), "payload")
            sc.ctx.memory_barrier()
        return None
        yield  # pragma: no cover

    results, runtimes = run_splitc(machine, program)
    assert results[0] == "payload"
    # PE 0 resumed only after the delayed region-B store, not at the
    # early region-A noise.
    assert runtimes[0].ctx.clock > 5_000.0


def test_region_counts_are_independent(machine):
    def program(sc):
        a = sc.all_alloc(64)
        b = sc.all_alloc(64)
        if sc.my_pe == 1:
            sc.store(GlobalPtr(0, a), 1)
            sc.store(GlobalPtr(0, a + 32), 2)
            sc.store(GlobalPtr(0, b), 3)
            sc.ctx.memory_barrier()
            return None
        if sc.my_pe == 0:
            yield from sc.store_sync(16, region=(a, a + 64))
            yield from sc.store_sync(8, region=(b, b + 64))
            return (sc.ctx.node.bytes_arrived_total((a, a + 64)),
                    sc.ctx.node.bytes_arrived_total((b, b + 64)))
        return None
        yield  # pragma: no cover

    results, _ = run_splitc(machine, program)
    assert results[0] == (16, 8)


def test_consecutive_region_syncs_are_cumulative(machine):
    def program(sc):
        a = sc.all_alloc(256)
        region = (a, a + 256)
        if sc.my_pe == 1:
            for step in range(3):
                sc.store(GlobalPtr(0, a + step * 32), step)
                sc.ctx.memory_barrier()
                yield from sc.barrier()
            return None
        if sc.my_pe == 0:
            times = []
            for _ in range(3):
                yield from sc.store_sync(8, region=region)
                times.append(sc.ctx.clock)
                yield from sc.barrier()
            return times
        for _ in range(3):
            yield from sc.barrier()
        return None

    results, _ = run_splitc(machine, program)
    times = results[0]
    assert times == sorted(times)
    assert len(times) == 3


def test_global_and_region_counters_coexist(machine):
    def program(sc):
        a = sc.all_alloc(64)
        if sc.my_pe == 1:
            sc.store(GlobalPtr(0, a), "x")
            sc.ctx.memory_barrier()
            return None
        if sc.my_pe == 0:
            yield from sc.store_sync(8)                  # global count
            yield from sc.store_sync(8, region=(a, a + 64))
            return True
        return None
        yield  # pragma: no cover

    results, _ = run_splitc(machine, program)
    assert results[0] is True
