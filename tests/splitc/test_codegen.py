"""Unit tests for the measurement-driven mechanism selection."""

import pytest

from repro.splitc.annex_policy import SingleAnnexPolicy
from repro.splitc.codegen import Measurements, default_plan, derive_plan

KB = 1024


def test_default_plan_matches_paper_decisions():
    plan = default_plan()
    assert plan.read_mechanism == "uncached"
    assert plan.bulk_read_blt_threshold == 16 * KB
    assert 6 * KB < plan.bulk_get_blt_threshold < 9 * KB
    assert plan.bulk_write_blt_threshold is None
    assert not plan.annex_skip_when_unchanged


def test_bulk_get_threshold_near_7900_bytes():
    plan = derive_plan(Measurements())
    # 27,000 cycles / 27.3 cycles-per-word * 8 bytes ~= 7,912 bytes.
    assert plan.bulk_get_blt_threshold == pytest.approx(7_900, abs=50)


def test_read_mechanism_flips_if_flushes_were_free():
    m = Measurements(cached_read_cycles=60.0, flush_line_cycles=0.0)
    plan = derive_plan(m)
    assert plan.read_mechanism == "cached"


def test_blt_threshold_scales_with_startup():
    cheap_blt = Measurements(blt_startup_cycles=2_700.0)
    plan = derive_plan(cheap_blt)
    assert plan.bulk_read_blt_threshold == 2 * KB
    assert plan.bulk_get_blt_threshold < 1 * KB


def test_plan_makes_conservative_single_policy():
    policy = default_plan().make_annex_policy()
    assert isinstance(policy, SingleAnnexPolicy)
    assert not policy.skip_when_unchanged


def test_notes_explain_decisions():
    plan = default_plan()
    text = " ".join(plan.notes)
    assert "uncached" in text
    assert "single register" in text
    assert "BLT" in text


def test_faster_prefetch_pushes_crossover_up():
    fast_pf = Measurements(prefetch_per_word_cycles=12.0)
    slow_pf = Measurements(prefetch_per_word_cycles=40.0)
    assert (derive_plan(fast_pf).bulk_read_blt_threshold
            > derive_plan(slow_pf).bulk_read_blt_threshold)
