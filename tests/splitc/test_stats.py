"""Tests for the per-operation cost accounting."""

import pytest

from repro.machine.machine import Machine
from repro.params import t3d_machine_params
from repro.splitc.gptr import GlobalPtr
from repro.splitc.runtime import SplitC, run_splitc
from repro.splitc.stats import OpStats


@pytest.fixture
def machine():
    return Machine(t3d_machine_params((2, 1, 1)))


def test_counts_and_cycles_by_class(machine):
    sc = SplitC(machine.make_contexts()[0])
    machine.node(1).memsys.dram.access(0x1000)
    for i in range(3):
        sc.read(GlobalPtr(1, 0x1000 + i * 8))
    sc.write(GlobalPtr(1, 0x2000), 1)
    sc.put(GlobalPtr(1, 0x3000), 2)
    sc.sync()
    sc.read(GlobalPtr(0, 0x100))

    assert sc.stats.count("read (remote)") == 3
    assert sc.stats.count("write (remote)") == 1
    assert sc.stats.count("put (issue)") == 1
    assert sc.stats.count("sync") == 1
    assert sc.stats.count("read (local)") == 1
    # Remote reads cost ~128 cycles each.
    assert sc.stats.ops["read (remote)"].mean_cycles == pytest.approx(
        128.0, abs=3.0)


def test_stats_total_matches_clock(machine):
    sc = SplitC(machine.make_contexts()[0])
    for i in range(4):
        sc.read(GlobalPtr(1, i * 8))
        sc.put(GlobalPtr(1, 0x4000 + i * 8), i)
    sc.sync()
    # Every charged cycle was attributed to some operation class.
    assert sc.stats.total_cycles == pytest.approx(sc.ctx.clock)


def test_barrier_and_all_store_sync_recorded(machine):
    def program(sc):
        sc.store(GlobalPtr((sc.my_pe + 1) % 2, sc.all_alloc(8)), 1)
        yield from sc.all_store_sync()
        yield from sc.barrier()
        return (sc.stats.count("all_store_sync"),
                sc.stats.count("barrier"))

    results, _ = run_splitc(machine, program)
    assert all(r == (1, 1) for r in results)


def test_bulk_ops_recorded(machine):
    sc = SplitC(machine.make_contexts()[0])
    sc.bulk_read(0x100000, GlobalPtr(1, 0), 256)
    sc.bulk_write(GlobalPtr(1, 0x8000), 0x100000, 256)
    assert sc.stats.count("bulk_read") == 1
    assert sc.stats.count("bulk_write") == 1
    assert sc.stats.cycles("bulk_read") > 0


def test_merge():
    a = OpStats()
    b = OpStats()
    a.record("x", 10.0)
    a.record("x", 20.0)
    b.record("x", 5.0)
    b.record("y", 1.0)
    merged = a.merge(b)
    assert merged.count("x") == 3
    assert merged.cycles("x") == pytest.approx(35.0)
    assert merged.count("y") == 1
    # Sources unchanged.
    assert a.count("y") == 0


def test_format_sorted_by_cost():
    stats = OpStats()
    stats.record("cheap", 1.0)
    stats.record("expensive", 1000.0)
    text = stats.format(title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert lines.index(next(l for l in lines if "expensive" in l)) < \
        lines.index(next(l for l in lines if "cheap" in l))
    assert "total" in lines[-1]


def test_empty_stats():
    stats = OpStats()
    assert stats.total_cycles == 0.0
    assert stats.count("anything") == 0
    assert "total" in stats.format()
