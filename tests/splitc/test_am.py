"""Integration tests for software Active Messages (paper section 7.4)."""

import pytest

from repro.machine.machine import Machine
from repro.params import cycles_to_us, t3d_machine_params
from repro.splitc.am import ActiveMessages
from repro.splitc.gptr import GlobalPtr
from repro.splitc.runtime import run_splitc


@pytest.fixture
def machine():
    return Machine(t3d_machine_params((2, 1, 1)))


def test_deposit_cost_near_2_9_us(machine):
    def program(sc):
        am = ActiveMessages(sc)
        h = am.register_handler(lambda am_, src, x: x)
        am.attach()
        yield from sc.barrier()
        if sc.my_pe == 0:
            before = sc.ctx.clock
            am.send(1, h, 42)
            return cycles_to_us(sc.ctx.clock - before)
        yield from am.wait_and_dispatch()
        return None

    results, _ = run_splitc(machine, program)
    assert results[0] == pytest.approx(2.9, abs=0.3)


def test_dispatch_cost_near_1_5_us(machine):
    def program2(sc):
        am = ActiveMessages(sc)
        h = am.register_handler(lambda am_, src, x: x)
        am.attach()
        yield from sc.barrier()
        if sc.my_pe == 0:
            am.send(1, h, 7)
        yield from sc.barrier()        # ensure message arrived
        if sc.my_pe == 0:
            return None
        before = sc.ctx.clock
        dispatch = am.poll()
        elapsed = cycles_to_us(sc.ctx.clock - before)
        return (dispatch.result, elapsed)

    results, _ = run_splitc(machine, program2)
    value, elapsed = results[1]
    assert value == 7
    assert elapsed == pytest.approx(1.5, abs=0.3)


def test_handler_runs_on_owner_with_args(machine):
    def program(sc):
        am = ActiveMessages(sc)
        log = []
        h = am.register_handler(
            lambda am_, src, a, b: log.append((src, a + b)))
        am.attach()
        yield from sc.barrier()
        if sc.my_pe == 0:
            am.send(1, h, 3, 4)
            return None
        yield from am.wait_and_dispatch()
        return log

    results, _ = run_splitc(machine, program)
    assert results[1] == [(0, 7)]


def test_fetch_inc_tickets_order_slots(machine):
    def program(sc):
        am = ActiveMessages(sc)
        h = am.register_handler(lambda am_, src, x: x)
        am.attach()
        yield from sc.barrier()
        if sc.my_pe == 0:
            for i in range(5):
                am.send(1, h, i)
            return None
        got = []
        for _ in range(5):
            got.append((yield from am.wait_and_dispatch()))
        # Tickets drew 5 distinct slots at the receiver.
        return (got, sc.ctx.node.atomics.register_value(0))

    results, _ = run_splitc(machine, program)
    got, counter = results[1]
    assert sorted(got) == [0, 1, 2, 3, 4]
    assert counter == 5


def test_poll_on_empty_queue_is_cheap_and_returns_none(machine):
    def program(sc):
        am = ActiveMessages(sc)
        am.attach()
        before = sc.ctx.clock
        result = am.poll()
        return (result, sc.ctx.clock - before)
        yield  # pragma: no cover

    results, _ = run_splitc(machine, program)
    assert results[0] == (None, 23.0)


def test_am_byte_write_is_correct_under_concurrency(machine):
    """The repaired byte store: both processors' bytes survive."""

    def program(sc):
        am = ActiveMessages(sc)
        am.attach()
        base = sc.all_alloc(8)
        target = GlobalPtr(0, base)
        yield from sc.barrier()
        # Both PEs update different bytes of one word on PE 0.
        am.write_byte(target, sc.my_pe, 0xA0 + sc.my_pe)
        yield from sc.barrier()
        if sc.my_pe == 0:
            # Drain the remote request (PE 1's byte): barrier exit time
            # exceeds all pre-barrier arrival times.
            while am.poll() is not None:
                pass
            sc.ctx.memory_barrier()
            return sc.ctx.local_read(base)
        return None

    results, _ = run_splitc(machine, program)
    word = int(results[0])
    assert word & 0xFF == 0xA0          # PE 0's byte
    assert (word >> 8) & 0xFF == 0xA1   # PE 1's byte survived too


def test_send_requires_attach_and_registration(machine):
    def program(sc):
        am = ActiveMessages(sc)
        errors = []
        try:
            am.send(1, 0, 1, 2, 3)
        except RuntimeError:
            errors.append("unattached")
        am.attach()
        try:
            am.send(1, 99, 1)
        except ValueError:
            errors.append("unregistered")
        try:
            am.send(1, 0, 1, 2, 3, 4, 5)
        except ValueError:
            errors.append("oversize")
        return errors
        yield  # pragma: no cover

    results, _ = run_splitc(machine, program)
    assert results[0] == ["unattached", "unregistered", "oversize"]
