"""Tests for the Annex-scheduling compiler pass."""

import pytest

from repro.machine.machine import Machine
from repro.params import t3d_machine_params
from repro.splitc.access_pass import (
    GlobalAccess,
    execute_accesses,
    schedule_accesses,
    schedule_window,
)
from repro.splitc.gptr import GlobalPtr
from repro.splitc.runtime import SplitC


def gp(pe, off):
    return GlobalPtr(pe, off)


def puts(*pes):
    return [GlobalAccess("put", gp(pe, 0x100 + 8 * i), value=i)
            for i, pe in enumerate(pes)]


def test_window_groups_by_pe_stably():
    window = puts(1, 2, 1, 3, 2, 1)
    scheduled = schedule_window(window)
    assert [a.target.pe for a in scheduled] == [1, 1, 1, 2, 2, 3]
    # Per-PE program order preserved (values were issue-ordered).
    pe1_values = [a.value for a in scheduled if a.target.pe == 1]
    assert pe1_values == sorted(pe1_values)


def test_blocking_accesses_are_sequence_points():
    sequence = (puts(1, 2)
                + [GlobalAccess("read", gp(3, 0))]
                + puts(2, 1))
    scheduled = schedule_accesses(sequence)
    kinds = [(a.kind, a.target.pe) for a in scheduled]
    # The read stays in the middle; each side grouped independently.
    assert kinds == [("put", 1), ("put", 2), ("read", 3),
                     ("put", 2), ("put", 1)]


def test_sync_closes_a_window():
    sequence = puts(1, 2) + [GlobalAccess("sync")] + puts(2, 1)
    scheduled = schedule_accesses(sequence)
    sync_pos = next(i for i, a in enumerate(scheduled)
                    if a.kind == "sync")
    assert sync_pos == 2


def test_scheduled_execution_saves_annex_reloads():
    """Interleaved puts to two processors: scheduling turns 2N annex
    reloads into 2."""
    n = 16
    interleaved = puts(*([1, 2] * n))

    def cost(scheduled):
        machine = Machine(t3d_machine_params((4, 1, 1)))
        sc = SplitC(machine.make_contexts()[0])
        sc.ctx.clock = 1e6
        return execute_accesses(sc, list(interleaved),
                                scheduled=scheduled)

    saved = cost(False) - cost(True)
    # 2N reloads -> 2: saves ~23 * (2N - 2) cycles.
    assert saved == pytest.approx(23.0 * (2 * n - 2), rel=0.15)


def test_scheduled_execution_functionally_equivalent():
    machine1 = Machine(t3d_machine_params((4, 1, 1)))
    machine2 = Machine(t3d_machine_params((4, 1, 1)))
    sequence = puts(1, 2, 3, 1, 2, 3, 1)
    sc1 = SplitC(machine1.make_contexts()[0])
    execute_accesses(sc1, list(sequence), scheduled=False)
    sc2 = SplitC(machine2.make_contexts()[0])
    execute_accesses(sc2, list(sequence), scheduled=True)
    for pe in (1, 2, 3):
        for i in range(7):
            addr = 0x100 + 8 * i
            assert (machine1.node(pe).memsys.memory.load(addr)
                    == machine2.node(pe).memsys.memory.load(addr))


def test_same_location_puts_keep_order():
    """Two puts to one address must land last-writer-wins in program
    order even after scheduling."""
    machine = Machine(t3d_machine_params((2, 1, 1)))
    sc = SplitC(machine.make_contexts()[0])
    sequence = [
        GlobalAccess("put", gp(1, 0x500), value="first"),
        GlobalAccess("put", gp(1, 0x600), value="other"),
        GlobalAccess("put", gp(1, 0x500), value="second"),
    ]
    execute_accesses(sc, sequence, scheduled=True)
    assert machine.node(1).memsys.memory.load(0x500) == "second"


def test_validation():
    with pytest.raises(ValueError):
        GlobalAccess("jump", gp(1, 0))
    with pytest.raises(ValueError):
        GlobalAccess("put")
