"""Integration tests for bulk transfer (paper section 6, Figure 8)."""

import pytest

from repro.machine.machine import Machine
from repro.params import mb_per_s, t3d_machine_params
from repro.splitc import bulk
from repro.splitc.gptr import GlobalPtr
from repro.splitc.runtime import SplitC

KB = 1024


@pytest.fixture
def machine():
    return Machine(t3d_machine_params((2, 1, 1)))


def make_sc(machine, pe=0):
    return SplitC(machine.make_contexts()[pe])


def fill_remote(machine, base, nwords, pe=1):
    mem = machine.node(pe).memsys.memory
    for i in range(nwords):
        mem.store(base + i * 8, 1000 + i)


def measure(fn):
    """Run a transfer on a fresh clock; return elapsed cycles."""
    def timed(sc, *args):
        before = sc.ctx.clock
        fn(sc, *args)
        return sc.ctx.clock - before
    return timed


def bw(mech, nbytes, src_base=0x10000, dst_base=0x80000, fill_words=0):
    """Bandwidth of one mechanism on a *fresh* machine (clocks at 0)."""
    machine = Machine(t3d_machine_params((2, 1, 1)))
    if fill_words:
        fill_remote(machine, src_base, fill_words)
    sc = make_sc(machine)
    before = sc.ctx.clock
    mech(sc, dst_base, GlobalPtr(1, src_base), nbytes)
    return mb_per_s(nbytes, sc.ctx.clock - before)


def test_all_read_mechanisms_move_the_data(machine):
    fill_remote(machine, 0x10000, 16)
    expected = [1000 + i for i in range(16)]
    mechs = [bulk.bulk_read_uncached, bulk.bulk_read_cached,
             bulk.bulk_read_prefetch, bulk.bulk_read_blt]
    for k, mech in enumerate(mechs):
        sc = make_sc(machine)
        dst = 0x80000 + k * 0x1000
        mech(sc, dst, GlobalPtr(1, 0x10000), 128)
        sc.ctx.memory_barrier()
        assert sc.ctx.node.memsys.memory.load_range(dst, 16) == expected


def test_uncached_bulk_is_slow_flat(machine):
    rate = bw(bulk.bulk_read_uncached, 1 * KB)
    assert 10.0 < rate < 16.0               # ~13 MB/s


def test_prefetch_beats_cached_and_uncached_midrange(machine):
    rates = {}
    for name, mech in [("uncached", bulk.bulk_read_uncached),
                       ("cached", bulk.bulk_read_cached),
                       ("prefetch", bulk.bulk_read_prefetch)]:
        rates[name] = bw(mech, 4 * KB, fill_words=512)
    assert rates["prefetch"] > rates["cached"] > rates["uncached"]


def test_cached_wins_at_one_line(machine):
    """At 32 bytes a cached read brings the whole line at once
    (section 6.2)."""
    cached = bw(bulk.bulk_read_cached, 32, fill_words=8)
    prefetch = bw(bulk.bulk_read_prefetch, 32, fill_words=8)
    assert cached > prefetch


def test_uncached_wins_at_one_word(machine):
    uncached = bw(bulk.bulk_read_uncached, 8)
    prefetch = bw(bulk.bulk_read_prefetch, 8)
    cached = bw(bulk.bulk_read_cached, 8)
    assert uncached > prefetch
    assert uncached > cached


def test_blt_wins_beyond_16kb(machine):
    blt = bw(bulk.bulk_read_blt, 64 * KB)
    prefetch = bw(bulk.bulk_read_prefetch, 64 * KB)
    assert blt > prefetch
    # And loses below the crossover.
    blt_small = bw(bulk.bulk_read_blt, 4 * KB)
    prefetch_small = bw(bulk.bulk_read_prefetch, 4 * KB)
    assert prefetch_small > blt_small


def test_blt_peak_bandwidth_140(machine):
    rate = bw(bulk.bulk_read_blt, 1024 * KB)
    assert rate == pytest.approx(140.0, rel=0.06)


def test_cached_batch_flush_inflection(machine):
    """Per-byte cost of cached bulk reads drops at the 8 KB batch-flush
    threshold (section 6.2, footnote 3)."""
    small = bw(bulk.bulk_read_cached, 4 * KB, fill_words=2048)
    large = bw(bulk.bulk_read_cached, 16 * KB, fill_words=2048)
    assert large > small


def test_dispatch_follows_plan(machine):
    sc = make_sc(machine)
    fill_remote(machine, 0x10000, 4096)
    # 8 bytes -> uncached (1 read, no prefetch traffic).
    sc.bulk_read(0x80000, GlobalPtr(1, 0x10000), 8)
    assert sc.ctx.node.prefetch.issues == 0
    assert sc.ctx.node.remote.reads == 1
    # 1 KB -> prefetch.
    sc.bulk_read(0x81000, GlobalPtr(1, 0x10000), 1 * KB)
    assert sc.ctx.node.prefetch.issues == 128
    # 32 KB -> BLT.
    sc.bulk_read(0x90000, GlobalPtr(1, 0x10000), 32 * KB)
    assert sc.ctx.node.blt.transfers_started == 1


def test_write_stores_beat_blt_everywhere(machine):
    for nbytes in (256, 4 * KB, 64 * KB):
        sc1 = make_sc(Machine(t3d_machine_params((2, 1, 1))))
        before = sc1.ctx.clock
        bulk.bulk_write_stores(sc1, GlobalPtr(1, 0x40000), 0x10000, nbytes)
        stores_cost = sc1.ctx.clock - before

        sc2 = make_sc(Machine(t3d_machine_params((2, 1, 1))))
        before = sc2.ctx.clock
        bulk.bulk_write_blt(sc2, GlobalPtr(1, 0x40000), 0x10000, nbytes)
        blt_cost = sc2.ctx.clock - before
        assert stores_cost < blt_cost, nbytes


def test_write_bandwidth_from_memory_near_90(machine):
    sc = make_sc(machine)
    nbytes = 256 * KB
    before = sc.ctx.clock
    bulk.bulk_write_stores(sc, GlobalPtr(1, 0x100000), 0x10000, nbytes)
    rate = mb_per_s(nbytes, sc.ctx.clock - before)
    assert rate == pytest.approx(90.0, rel=0.15)


def test_write_faster_when_source_cached(machine):
    sc = make_sc(machine)
    # Warm the source into cache (8 KB fits).
    for i in range(512):
        sc.ctx.local_read(0x10000 + i * 8)
    before = sc.ctx.clock
    bulk.bulk_write_stores(sc, GlobalPtr(1, 0x100000), 0x10000, 4 * KB)
    cached_rate = mb_per_s(4 * KB, sc.ctx.clock - before)

    sc2 = make_sc(Machine(t3d_machine_params((2, 1, 1))))
    before = sc2.ctx.clock
    bulk.bulk_write_stores(sc2, GlobalPtr(1, 0x100000), 0x10000, 4 * KB)
    uncached_rate = mb_per_s(4 * KB, sc2.ctx.clock - before)
    assert cached_rate > uncached_rate


def test_bulk_write_delivers_data(machine):
    sc = make_sc(machine)
    for i in range(16):
        sc.ctx.node.memsys.memory.store(0x10000 + i * 8, i * i)
    sc.bulk_write(GlobalPtr(1, 0x50000), 0x10000, 128)
    assert machine.node(1).memsys.memory.load_range(0x50000, 16) == [
        i * i for i in range(16)]


def test_bulk_get_small_uses_prefetch_large_uses_blt(machine):
    sc = make_sc(machine)
    fill_remote(machine, 0x10000, 4096)
    sc.bulk_get(0x80000, GlobalPtr(1, 0x10000), 1 * KB)
    assert sc.ctx.node.blt.transfers_started == 0
    sc.bulk_get(0x90000, GlobalPtr(1, 0x10000), 16 * KB)
    assert sc.ctx.node.blt.transfers_started == 1
    assert len(sc._pending_blt) == 1
    sc.sync()
    assert not sc._pending_blt


def test_bulk_get_blt_overlaps_computation(machine):
    """Initiation charges only the OS call; sync absorbs the flight."""
    sc = make_sc(machine)
    before = sc.ctx.clock
    sc.bulk_get(0x80000, GlobalPtr(1, 0x10000), 64 * KB)
    initiate_cost = sc.ctx.clock - before
    assert initiate_cost == pytest.approx(27_000.0, rel=0.01)
    sc.ctx.charge(100_000.0)               # plenty of local work
    before = sc.ctx.clock
    sc.sync()
    assert sc.ctx.clock - before < 100.0   # transfer long since done


def test_bulk_put_delivers_at_sync(machine):
    sc = make_sc(machine)
    for i in range(4):
        sc.ctx.node.memsys.memory.store(0x10000 + i * 8, f"p{i}")
    sc.bulk_put(GlobalPtr(1, 0x60000), 0x10000, 32)
    sc.sync()
    assert machine.node(1).memsys.memory.load_range(0x60000, 4) == [
        "p0", "p1", "p2", "p3"]


def test_local_bulk_is_plain_copy(machine):
    sc = make_sc(machine)
    for i in range(8):
        sc.ctx.node.memsys.memory.store(0x10000 + i * 8, i)
    sc.bulk_read(0x20000, GlobalPtr(0, 0x10000), 64)
    sc.ctx.memory_barrier()
    assert sc.ctx.node.memsys.memory.load_range(0x20000, 8) == list(range(8))
    assert sc.ctx.node.remote.reads == 0


def test_partial_word_rejected(machine):
    sc = make_sc(machine)
    with pytest.raises(ValueError):
        sc.bulk_read(0x20000, GlobalPtr(1, 0), 12)
