"""Unit tests for the simulation kernel: conditions and scheduler
edge cases beyond what the SPMD integration tests cover."""

import pytest

from repro.machine.machine import Machine
from repro.params import t3d_machine_params
from repro.simkernel.conditions import TimeCondition
from repro.simkernel.scheduler import SpmdScheduler


@pytest.fixture
def machine():
    return Machine(t3d_machine_params((2, 1, 1)))


def test_time_condition_resume_semantics():
    cond = TimeCondition(100.0)
    assert cond.ready()
    assert cond.resume_time(50.0) == 100.0
    assert cond.resume_time(200.0) == 200.0


def test_time_condition_as_polite_spin(machine):
    """Yielding TimeConditions lets other threads interleave."""
    trace = []

    def program(ctx):
        for i in range(3):
            trace.append((ctx.pe, i, ctx.clock))
            yield TimeCondition(ctx.clock + 100.0)
        return ctx.clock

    results, _ = machine.run_spmd(program)
    assert all(r == pytest.approx(300.0) for r in results)
    # Rounds interleave: both PEs appear in each 100-cycle window.
    rounds = [sorted(pe for pe, i, _t in trace if i == k)
              for k in range(3)]
    assert rounds == [[0, 1]] * 3


def test_scheduler_runs_min_clock_first(machine):
    order = []

    def program(ctx):
        ctx.charge(10.0 if ctx.pe == 1 else 1000.0)
        yield TimeCondition(ctx.clock)
        order.append(ctx.pe)
        return None

    machine.run_spmd(program)
    assert order == [1, 0]          # smaller clock resumed first


def test_program_arguments_forwarded(machine):
    def program(ctx, base, scale=1):
        return base + scale * ctx.pe
        yield  # pragma: no cover

    results, _ = machine.run_spmd(program, 100, scale=10)
    assert results == [100, 110]


def test_yielding_non_condition_rejected(machine):
    def program(ctx):
        yield 42

    with pytest.raises(TypeError):
        machine.run_spmd(program)


def test_exception_in_thread_propagates(machine):
    def program(ctx):
        if ctx.pe == 1:
            raise ValueError("thread blew up")
        return "fine"
        yield  # pragma: no cover

    with pytest.raises(ValueError, match="thread blew up"):
        machine.run_spmd(program)


def test_single_pe_machine_runs():
    machine = Machine(t3d_machine_params((1, 1, 1)))

    def program(ctx):
        yield from ctx.barrier()
        return ctx.pe

    results, _ = machine.run_spmd(program)
    assert results == [0]


def test_scheduler_settles_before_declaring_deadlock(machine):
    """A receiver blocked on bytes whose sender already scheduled the
    drain (but never flushed) must be rescued by settle()."""

    def program(ctx):
        if ctx.pe == 0:
            full = ctx.node.annex.compose_address(1, 0x40)
            ctx.node.annex.set_entry(1, 1)
            ctx.charge(23.0)
            ctx.charge(ctx.node.remote.store(ctx.clock, 1, 0x40, "v", full))
            # No mb, no further memory ops: the entry sits pending.
            return "sent"
        yield from ctx.wait_for_bytes(8)
        return ctx.node.memsys.memory.load if False else "got"

    results, _ = machine.run_spmd(program)
    assert results == ["sent", "got"]


def test_scheduler_is_reusable(machine):
    scheduler = SpmdScheduler(machine)

    def program(ctx):
        yield from ctx.barrier()
        return ctx.pe

    first = scheduler.run(machine.make_contexts(), program)
    second = scheduler.run(machine.make_contexts(), program)
    assert first == second == [0, 1]


def test_deadlock_message_is_diagnostic(machine):
    from repro.simkernel.scheduler import DeadlockError

    def program(ctx):
        if ctx.pe == 0:
            return "done"
        yield from ctx.barrier()

    with pytest.raises(DeadlockError) as excinfo:
        machine.run_spmd(program)
    message = str(excinfo.value)
    assert "pe1" in message
    assert "BarrierCondition" in message
    assert "1/2 arrived" in message
    assert "already finished" in message


def test_deadlock_message_shows_byte_progress(machine):
    from repro.simkernel.scheduler import DeadlockError

    def program(ctx):
        if ctx.pe == 0:
            yield from ctx.wait_for_bytes(1_000_000)
        return None
        yield  # pragma: no cover

    with pytest.raises(DeadlockError) as excinfo:
        machine.run_spmd(program)
    assert "0/1000000 bytes" in str(excinfo.value)
