"""Integration tests for the SPMD scheduler + machine fabric."""

import pytest

from repro.machine.machine import Machine
from repro.params import t3d_machine_params
from repro.simkernel.scheduler import DeadlockError


@pytest.fixture
def machine():
    return Machine(t3d_machine_params((2, 2, 1)))


def test_trivial_program_returns_per_pe(machine):
    def program(ctx):
        ctx.charge(10.0 * ctx.pe)
        return ctx.pe * 100
        yield  # makes this a generator

    results, contexts = machine.run_spmd(program)
    assert results == [0, 100, 200, 300]
    assert [c.clock for c in contexts] == [0.0, 10.0, 20.0, 30.0]


def test_barrier_aligns_clocks(machine):
    def program(ctx):
        ctx.charge(1_000.0 * ctx.pe)       # skewed arrival
        yield from ctx.barrier()
        return ctx.clock

    results, _ = machine.run_spmd(program)
    # Everyone exits at (last arrival + propagate + poll) + end cost;
    # exits differ only by when each PE polls (same here).
    assert max(results) - min(results) < 1e-9
    assert min(results) >= 3_000.0


def test_multiple_barriers(machine):
    def program(ctx):
        times = []
        for _ in range(3):
            ctx.charge(100.0 + ctx.pe)
            yield from ctx.barrier()
            times.append(ctx.clock)
        return times

    results, _ = machine.run_spmd(program)
    for step in range(3):
        step_times = [r[step] for r in results]
        assert max(step_times) - min(step_times) < 1e-9


def test_store_sync_pattern(machine):
    """PE 0 waits for 16 bytes; every other PE stores two words to it."""

    def program(ctx):
        if ctx.pe == 0:
            yield from ctx.wait_for_bytes(16)
            return ctx.node.bytes_arrived_total()
        if ctx.pe in (1, 2):
            full = ctx.node.annex.compose_address(1, 0x100 + 8 * ctx.pe)
            ctx.node.annex.set_entry(1, 0)
            ctx.charge(23.0)
            ctx.charge(ctx.node.remote.store(
                ctx.clock, 0, 0x100 + 8 * ctx.pe, ctx.pe, full))
        return None
        yield  # pragma: no cover

    results, contexts = machine.run_spmd(program)
    assert results[0] >= 16
    # The receiver's clock advanced to at least the arrival time.
    assert contexts[0].clock > 17.0


def test_message_send_receive(machine):
    def program(ctx):
        if ctx.pe == 1:
            ctx.charge(ctx.node.msgq.send(ctx.clock, 0, ("ping", ctx.pe)))
            return "sent"
        if ctx.pe == 0:
            yield from ctx.wait_message()
            cycles, msg = ctx.node.msgq.receive(ctx.clock)
            ctx.charge(cycles)
            return msg.payload
        return None
        yield  # pragma: no cover

    results, contexts = machine.run_spmd(program)
    assert results[0] == ("ping", 1)
    # Receiver paid the ~25 us interrupt: 3750 cycles.
    assert contexts[0].clock > 3_750.0


def test_deadlock_detected(machine):
    def program(ctx):
        if ctx.pe == 0:
            return "skipped the barrier"
        yield from ctx.barrier()

    with pytest.raises(DeadlockError):
        machine.run_spmd(program)


def test_non_generator_program_rejected(machine):
    def not_a_generator(ctx):
        return 1

    with pytest.raises(TypeError):
        machine.run_spmd(not_a_generator)


def test_fuzzy_barrier_window(machine):
    """Work placed between start and wait overlaps the barrier."""

    def program(ctx):
        epoch = yield from ctx.barrier_start()
        ctx.charge(500.0)                  # useful work in the window
        yield from ctx.barrier_wait(epoch)
        return ctx.clock

    results, _ = machine.run_spmd(program)
    # The 500-cycle window is absorbed into the wait (everyone arrives
    # by ~5 cycles; settle at 30; the work ends at 505 > settle).
    assert max(results) == pytest.approx(505.0 + 5.0 + 5.0, abs=1.0)


def test_settle_commits_scheduled_drains(machine):
    node0 = machine.node(0)
    full = node0.annex.compose_address(1, 0x40)
    node0.remote.store(0.0, 1, 0x40, "v", full)
    assert machine.node(1).memsys.memory.load(0x40) == 0
    machine.settle()
    assert machine.node(1).memsys.memory.load(0x40) == "v"


def test_machine_reset(machine):
    machine.node(0).memsys.memory.store(0, 1)
    machine.node(0).memsys.l1.fill(0)
    machine.reset()
    assert machine.node(0).memsys.l1.resident_lines == 0
    # reset clears hardware state, not memory contents
    assert machine.node(0).memsys.memory.load(0) == 1
