"""Cohort-scheduler horizon edge cases.

The wake-gated cohort scheduler batches runnable threads between
synchronization horizons; these tests pin the edges where batching
could plausibly go wrong — a partial barrier must hold its cohort, a
wakeup landing exactly on the horizon must not be missed, mixed
blocking conditions must split a cohort correctly, and the one-
processor machine must degenerate to the serial reference path.  Each
scenario is checked against the event-at-a-time scheduler for *exact*
clock and result equality.
"""

import pytest

from repro.machine.cohort import CohortScheduler, cohort_enabled
from repro.machine.machine import Machine
from repro.params import t3d_machine_params
from repro.simkernel.scheduler import DeadlockError


def _machine(shape=(2, 2, 1)):
    return Machine(t3d_machine_params(shape))


def _run_both(program, shape=(2, 2, 1), monkeypatch=None):
    """Run ``program`` under the cohort and the reference scheduler on
    fresh machines; return ((results, clocks), (results, clocks))."""
    assert monkeypatch is not None
    monkeypatch.setenv("REPRO_COHORT", "1")
    results_c, contexts_c = _machine(shape).run_spmd(program)
    monkeypatch.setenv("REPRO_COHORT", "0")
    results_r, contexts_r = _machine(shape).run_spmd(program)
    return ((results_c, [c.clock for c in contexts_c]),
            (results_r, [c.clock for c in contexts_r]))


# ----------------------------------------------------------------------
# Partial barrier: a straggler must hold the whole epoch's cohort
# ----------------------------------------------------------------------

def test_partial_barrier_holds_cohort(monkeypatch):
    def program(ctx):
        # PE 3 straggles by 50k cycles; 0-2 arrive almost together and
        # must block until the last arrival completes the epoch.
        ctx.charge(50_000.0 if ctx.pe == 3 else 10.0 * ctx.pe)
        yield from ctx.barrier()
        return ctx.clock

    cohort, reference = _run_both(program, monkeypatch=monkeypatch)
    assert cohort == reference
    results, _clocks = cohort
    assert min(results) > 50_000.0        # nobody exited early


def test_repeated_partial_barriers(monkeypatch):
    def program(ctx):
        marks = []
        for step in range(4):
            # A different straggler each epoch.
            ctx.charge(5_000.0 if ctx.pe == step else float(ctx.pe))
            yield from ctx.barrier()
            marks.append(ctx.clock)
        return marks

    assert _run_both(program, monkeypatch=monkeypatch)[0] == \
        _run_both(program, monkeypatch=monkeypatch)[1]


# ----------------------------------------------------------------------
# Wakeup exactly on the horizon: bytes landing at the waiter's clock
# ----------------------------------------------------------------------

def test_store_wakeup_via_in_run_flush(monkeypatch):
    """The producer's memory barrier drains the store while other
    threads still run: the wake event fires mid-round."""

    def program(ctx):
        if ctx.pe == 0:
            yield from ctx.wait_for_bytes(8)
            return ctx.node.bytes_arrived_total()
        if ctx.pe == 1:
            full = ctx.node.annex.compose_address(1, 0x100)
            ctx.node.annex.set_entry(1, 0)
            ctx.charge(23.0)
            ctx.charge(ctx.node.remote.store(ctx.clock, 0, 0x100,
                                             7.0, full))
            ctx.memory_barrier()          # forces the drain now
            return "flushed"
        ctx.charge(100_000.0)             # keep the machine busy
        return None
        yield  # pragma: no cover

    cohort, reference = _run_both(program, monkeypatch=monkeypatch)
    assert cohort == reference
    assert cohort[0][0] >= 8


def test_store_wakeup_via_settle_when_heap_empties(monkeypatch):
    """No thread ever flushes: the bytes land only when the scheduler
    runs out of runnable threads and settles the write buffers — the
    wakeup arrives exactly on the deadlock-check horizon."""

    def program(ctx):
        if ctx.pe == 0:
            yield from ctx.wait_for_bytes(8)
            return ctx.node.bytes_arrived_total()
        if ctx.pe == 1:
            full = ctx.node.annex.compose_address(1, 0x100)
            ctx.node.annex.set_entry(1, 0)
            ctx.charge(ctx.node.remote.store(ctx.clock, 0, 0x100,
                                             9.0, full))
            # No memory barrier: the packet sits in the write buffer
            # until the machine settles.
            return "pending"
        return None
        yield  # pragma: no cover

    cohort, reference = _run_both(program, monkeypatch=monkeypatch)
    assert cohort == reference
    assert cohort[0][0] >= 8


# ----------------------------------------------------------------------
# Mixed conditions: one wake event must not wake the other groups
# ----------------------------------------------------------------------

def test_mixed_conditions_split_cohort(monkeypatch):
    """Barrier waiters, a bytes waiter, and a message waiter coexist;
    each horizon releases exactly its own group."""

    def program(ctx):
        if ctx.pe == 0:
            # Waits on bytes first, then joins the barrier.
            yield from ctx.wait_for_bytes(8)
            yield from ctx.barrier()
            return ("bytes", ctx.node.bytes_arrived_total())
        if ctx.pe == 1:
            # Waits on a hardware message, then joins the barrier.
            yield from ctx.wait_message()
            cycles, msg = ctx.node.msgq.receive(ctx.clock)
            ctx.charge(cycles)
            yield from ctx.barrier()
            return ("msg", msg.payload)
        if ctx.pe == 2:
            # Feeds both waiters late, then joins the barrier.
            ctx.charge(20_000.0)
            full = ctx.node.annex.compose_address(1, 0x200)
            ctx.node.annex.set_entry(1, 0)
            ctx.charge(23.0)
            ctx.charge(ctx.node.remote.store(ctx.clock, 0, 0x200,
                                             1.0, full))
            ctx.memory_barrier()
            ctx.charge(ctx.node.msgq.send(ctx.clock, 1, ("hi", 2)))
            yield from ctx.barrier()
            return ("fed", None)
        yield from ctx.barrier()
        return ("idle", None)

    cohort, reference = _run_both(program, monkeypatch=monkeypatch)
    assert cohort == reference
    assert cohort[0][0] == ("bytes", 8)
    assert cohort[0][1] == ("msg", ("hi", 2))


def test_annex_conflict_inside_cohort(monkeypatch):
    """Threads of one cohort hammer conflicting Annex registers (the
    same register renamed between targets every put): the per-thread
    Annex reload costs must split the cohort's clocks exactly as the
    reference interleaving does."""
    from repro.splitc.runtime import run_splitc

    def program(sc):
        base = sc.all_alloc(16 * 8)
        sc.ctx.local_write(base, float(sc.my_pe))
        sc.ctx.memory_barrier()
        yield from sc.barrier()
        # Alternate targets put-by-put: every put reloads the single
        # conservatively-managed Annex register (a conflict), unlike
        # the steady same-target streams of the exchange phases.
        for i in range(6):
            target = (sc.my_pe + 1 + i % 2) % sc.num_pes
            if target != sc.my_pe:
                sc.put_to(target, base + (8 + i) * 8, float(i))
        yield from sc.all_store_sync()
        return sc.ctx.clock

    def scenario():
        machine = _machine()
        results, runtimes = run_splitc(machine, program)
        return results, [sc.stats.ops["put (issue)"].count
                         for sc in runtimes]

    monkeypatch.setenv("REPRO_COHORT", "1")
    cohort = scenario()
    monkeypatch.setenv("REPRO_COHORT", "0")
    reference = scenario()
    assert cohort == reference


# ----------------------------------------------------------------------
# Degenerate and failure shapes
# ----------------------------------------------------------------------

def test_single_pe_degenerates_to_serial(monkeypatch):
    def program(ctx):
        ctx.charge(10.0)
        yield from ctx.barrier()
        return ctx.pe

    monkeypatch.setenv("REPRO_COHORT", "1")
    results, contexts = _machine((1, 1, 1)).run_spmd(program)
    assert results == [0]
    monkeypatch.setenv("REPRO_COHORT", "0")
    ref_results, ref_contexts = _machine((1, 1, 1)).run_spmd(program)
    assert results == ref_results
    assert [c.clock for c in contexts] == [c.clock for c in ref_contexts]


def test_deadlock_message_matches_reference(monkeypatch):
    def program(ctx):
        if ctx.pe == 0:
            return "skipped the barrier"
        yield from ctx.barrier()

    messages = {}
    for env in ("1", "0"):
        monkeypatch.setenv("REPRO_COHORT", env)
        with pytest.raises(DeadlockError) as excinfo:
            _machine().run_spmd(program)
        messages[env] = str(excinfo.value)
    assert messages["1"] == messages["0"]
    assert "already finished" in messages["1"]


def test_wake_sinks_restored_after_run(monkeypatch):
    monkeypatch.setenv("REPRO_COHORT", "1")
    machine = _machine()

    def program(ctx):
        yield from ctx.barrier()
        return ctx.pe

    machine.run_spmd(program)
    assert machine.barrier.wake_sink is None
    for node in machine.nodes:
        assert node.wake_sink is None
    # And the machine is reusable (fresh run on the same fabric).
    assert machine.run_spmd(program)[0] == [0, 1, 2, 3]


@pytest.mark.parametrize("value,expected", [
    ("0", False), ("false", False), ("no", False), ("off", False),
    (" OFF ", False), ("1", True), ("yes", True), ("", True),
])
def test_cohort_enabled_parsing(monkeypatch, value, expected):
    monkeypatch.setenv("REPRO_COHORT", value)
    assert cohort_enabled() is expected


def test_cohort_enabled_defaults_on(monkeypatch):
    monkeypatch.delenv("REPRO_COHORT", raising=False)
    assert cohort_enabled() is True


def test_dispatch_honours_env(monkeypatch):
    """run_spmd picks the cohort scheduler exactly when enabled and
    more than one context exists."""
    recorded = []
    original = CohortScheduler._run

    def spying_run(self, threads, wake):
        recorded.append(len(threads))
        return original(self, threads, wake)

    monkeypatch.setattr(CohortScheduler, "_run", spying_run)

    def program(ctx):
        yield from ctx.barrier()
        return ctx.pe

    monkeypatch.setenv("REPRO_COHORT", "1")
    _machine().run_spmd(program)
    assert recorded == [4]
    monkeypatch.setenv("REPRO_COHORT", "0")
    _machine().run_spmd(program)
    assert recorded == [4]          # reference path: no cohort run
    monkeypatch.setenv("REPRO_COHORT", "1")
    _machine((1, 1, 1)).run_spmd(program)
    assert recorded == [4]          # 1 PE: serial degenerate path


def test_cohort_round_events_traced(monkeypatch):
    """Traced cohort runs emit schema-valid ``cohort_round`` events."""
    from repro.trace import tracer as trace
    from repro.trace.events import validate_record

    monkeypatch.setenv("REPRO_COHORT", "1")

    def program(ctx):
        ctx.charge(100.0 * ctx.pe)
        yield from ctx.barrier()
        return ctx.pe

    with trace.tracing() as tracer:
        _machine().run_spmd(program)
        rounds = [dict(r) for r in tracer.ring
                  if r.get("ev") == "cohort_round"]
    assert rounds, "no cohort_round events in a traced cohort run"
    for record in rounds:
        validate_record(record)
        assert record["woken"] >= 1
        assert record["t"] is None and record["pe"] is None
