"""Unit tests for Node internals: heap, arrival log, reset."""

import pytest

from repro.machine.machine import Machine
from repro.machine.node import HeapAllocator
from repro.params import t3d_machine_params


@pytest.fixture
def node():
    return Machine(t3d_machine_params((2, 1, 1))).node(0)


def test_heap_never_returns_null():
    heap = HeapAllocator()
    assert heap.alloc(8) >= 0x1000


def test_heap_alignment():
    heap = HeapAllocator()
    heap.alloc(3)
    addr = heap.alloc(8, align=64)
    assert addr % 64 == 0


def test_heap_rejects_bad_args():
    heap = HeapAllocator()
    with pytest.raises(ValueError):
        heap.alloc(0)
    with pytest.raises(ValueError):
        heap.alloc(8, align=3)


def test_arrival_log_cumulative(node):
    node.record_store_arrival(8, arrival_time=100.0)
    node.record_store_arrival(16, arrival_time=50.0)   # out of order
    node.record_store_arrival(8, arrival_time=200.0)
    assert node.bytes_arrived_total() == 32
    assert node.time_when_bytes_arrived(8) == 50.0
    assert node.time_when_bytes_arrived(16) == 50.0
    assert node.time_when_bytes_arrived(24) == 100.0
    assert node.time_when_bytes_arrived(32) == 200.0
    assert node.time_when_bytes_arrived(0) == 0.0


def test_arrival_log_insufficient_bytes_raises(node):
    node.record_store_arrival(8, 10.0)
    with pytest.raises(RuntimeError):
        node.time_when_bytes_arrived(9)


def test_node_reset_clears_log_and_state(node):
    node.record_store_arrival(8, 10.0)
    node.memsys.l1.fill(0)
    node.reset()
    assert node.bytes_arrived_total() == 0
    assert node.memsys.l1.resident_lines == 0


def test_symmetric_alloc_agrees_across_nodes():
    machine = Machine(t3d_machine_params((2, 2, 1)))
    a = machine.symmetric_alloc(64)
    b = machine.symmetric_alloc(128)
    assert b >= a + 64


def test_symmetric_alloc_detects_divergence():
    machine = Machine(t3d_machine_params((2, 1, 1)))
    machine.node(0).heap.alloc(8)        # diverge one node's heap
    with pytest.raises(RuntimeError):
        machine.symmetric_alloc(64)


def test_machine_node_bounds():
    machine = Machine(t3d_machine_params((2, 1, 1)))
    with pytest.raises(ValueError):
        machine.node(2)
