"""Calibrator behavior on toy models: recovery, pinned parameters,
gate failures, and the stimulus-dedup pass.

Toy models keep these tests fast — no simulation; ``tasks()`` is
empty and ``observations`` returns prebuilt points.
"""

from dataclasses import dataclass, field

import pytest

from repro.models.base import AnalyticModel, CalPoint, ParamSpec
from repro.models.calibrate import (
    CalibrationError,
    calibrate_models,
    fit_model,
    gather_observations,
)


def affine_points(a, b, xs):
    return [CalPoint(features=(("x", x),), observed=a + b * x)
            for x in xs]


@dataclass
class ToyAffineModel(AnalyticModel):
    name: str = "toy_affine"
    target_mape: float = 5.0
    feature_names: tuple = ("x",)
    param_specs: tuple = (
        ParamSpec("a", 0.0, 10.0),
        ParamSpec("b", 0.0, 4.0),
    )
    points: tuple = ()

    def predict(self, params, machine, point):
        return params["a"] + params["b"] * point["x"]

    def tasks(self, quick=False):
        return []

    def observations(self, results, quick=False):
        return list(self.points)


class TestFitModel:
    def test_recovers_affine_parameters(self):
        points = affine_points(3.0, 2.0, [1, 2, 4, 8, 16])
        result = fit_model(ToyAffineModel(), points)
        assert result.mape < 0.5
        assert result.ok
        assert result.params["a"] == pytest.approx(3.0, abs=0.2)
        assert result.params["b"] == pytest.approx(2.0, abs=0.1)
        assert result.npoints == 5

    def test_pinned_parameter_stays_pinned(self):
        @dataclass
        class Pinned(ToyAffineModel):
            name: str = "toy_pinned"
            param_specs: tuple = (
                ParamSpec("a", 3.0, 3.0),      # degenerate grid
                ParamSpec("b", 0.0, 4.0),
            )

        points = affine_points(3.0, 2.0, [1, 2, 4, 8])
        result = fit_model(Pinned(), points)
        assert result.params["a"] == 3.0
        assert result.mape < 0.5

    def test_out_of_bounds_seed_is_clamped(self):
        @dataclass
        class WildSeed(ToyAffineModel):
            name: str = "toy_wild_seed"

            def seed_params(self, points):
                return {"a": 99.0, "b": -7.0}

        points = affine_points(3.0, 2.0, [1, 2, 4, 8])
        result = fit_model(WildSeed(), points)
        assert 0.0 <= result.params["a"] <= 10.0
        assert 0.0 <= result.params["b"] <= 4.0
        # And the descent still recovers the fit from the clamped seed
        # (looser tolerance: the adversarial seed makes the first
        # coordinate passes zigzag before converging).
        assert result.mape < 2.0

    def test_empty_points_raise_calibration_error(self):
        with pytest.raises(CalibrationError,
                           match="no calibration points"):
            fit_model(ToyAffineModel(), [])


class TestStrictGate:
    def test_gate_miss_raises_with_clear_message(self):
        @dataclass
        class Unfittable(ToyAffineModel):
            # Data has slope 2, but b is pinned to 0: guaranteed miss.
            name: str = "toy_unfittable"
            target_mape: float = 1.0
            param_specs: tuple = (
                ParamSpec("a", 0.0, 10.0),
                ParamSpec("b", 0.0, 0.0),
            )
            points: tuple = tuple(affine_points(3.0, 2.0,
                                                [1, 2, 4, 8, 16]))

        with pytest.raises(CalibrationError) as exc:
            calibrate_models([Unfittable()], use_cache=False,
                             strict=True)
        message = str(exc.value)
        assert "toy_unfittable" in message
        assert "MAPE gate" in message
        assert "target 1.0%" in message

    def test_non_strict_records_the_miss(self):
        @dataclass
        class Unfittable(ToyAffineModel):
            name: str = "toy_unfittable2"
            target_mape: float = 1.0
            param_specs: tuple = (
                ParamSpec("a", 0.0, 10.0),
                ParamSpec("b", 0.0, 0.0),
            )
            points: tuple = tuple(affine_points(3.0, 2.0,
                                                [1, 2, 4, 8, 16]))

        results = calibrate_models([Unfittable()], use_cache=False,
                                   strict=False)
        assert len(results) == 1
        assert not results[0].ok
        assert "MISS" in results[0].describe()


# ---------------------------------------------------- stimulus dedup

RUNS = []


@dataclass(frozen=True)
class CountingTask:
    tag: str = "shared"

    def spec(self):
        return {"task": "CountingTask", "tag": self.tag}

    def run(self):
        RUNS.append(self.tag)
        return [("x", 1.0)]


@dataclass
class SharingModel(AnalyticModel):
    name: str = "toy_sharing"
    feature_names: tuple = ("x",)
    param_specs: tuple = (ParamSpec("a", 0.0, 2.0),)

    def predict(self, params, machine, point):
        return params["a"]

    def tasks(self, quick=False):
        return [CountingTask()]

    def observations(self, results, quick=False):
        return [CalPoint(features=(("x", 0),), observed=v)
                for _, v in results[0]]


def test_shared_stimuli_simulate_once():
    """Two models with spec-identical tasks cost one execution."""
    RUNS.clear()
    a = SharingModel()
    b = SharingModel(name="toy_sharing_b")
    observations = gather_observations([a, b], use_cache=False)
    assert len(RUNS) == 1
    assert observations["toy_sharing"] == observations["toy_sharing_b"]
    assert observations["toy_sharing"][0].observed == 1.0
