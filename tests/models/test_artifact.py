"""Fitted-parameter artifact: round-trip, validation, rehydration."""

import json

import pytest

from repro.models.artifact import (
    ARTIFACT_VERSION,
    artifact_results,
    load_artifact,
    save_artifact,
)
from repro.models.calibrate import FitResult


def results_fixture():
    return [
        FitResult(model="beta", params={"b": 2.5, "a": 1.0},
                  mape=0.1234, target_mape=5.0, npoints=10),
        FitResult(model="alpha", params={"x": 3.0},
                  mape=4.5678, target_mape=10.0, npoints=7),
    ]


class TestRoundTrip:
    def test_save_load_rehydrate(self, tmp_path):
        path = tmp_path / "fitted.json"
        written = save_artifact(results_fixture(), path=path, quick=True)
        assert written == path

        payload = load_artifact(path)
        assert payload["version"] == ARTIFACT_VERSION
        assert payload["quick"] is True
        assert set(payload["models"]) == {"alpha", "beta"}

        rehydrated = {r.model: r for r in artifact_results(payload)}
        assert rehydrated["beta"].params == {"a": 1.0, "b": 2.5}
        assert rehydrated["beta"].mape == pytest.approx(0.1234)
        assert rehydrated["alpha"].target_mape == 10.0
        assert rehydrated["alpha"].npoints == 7
        assert rehydrated["alpha"].ok          # 4.57 <= 10

    def test_artifact_is_sorted_and_fingerprinted(self, tmp_path):
        path = tmp_path / "fitted.json"
        save_artifact(results_fixture(), path=path)
        payload = json.loads(path.read_text())
        assert list(payload["models"]) == ["alpha", "beta"]
        assert payload["source_fingerprint"]

    def test_save_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        save_artifact(results_fixture(), path=a)
        save_artifact(list(reversed(results_fixture())), path=b)
        assert a.read_text() == b.read_text()


class TestValidation:
    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"version": 999, "models": {}}))
        with pytest.raises(ValueError, match="version"):
            load_artifact(path)

    def test_missing_models_mapping(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": ARTIFACT_VERSION}))
        with pytest.raises(ValueError, match="models"):
            load_artifact(path)

    def test_entry_without_params(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "version": ARTIFACT_VERSION,
            "models": {"m": {"mape": 1.0, "target_mape": 5.0,
                             "npoints": 3}},
        }))
        with pytest.raises(ValueError, match="'m'.*params"):
            load_artifact(path)

    def test_entry_missing_field(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "version": ARTIFACT_VERSION,
            "models": {"m": {"params": {"a": 1.0}, "mape": 1.0,
                             "target_mape": 5.0}},
        }))
        with pytest.raises(ValueError, match="npoints"):
            load_artifact(path)
