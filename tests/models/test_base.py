"""ParamSpec validation, linspace edge cases, and MAPE semantics."""

import math

import pytest

from repro.models.base import ParamSpec, mape


class TestParamSpec:
    def test_unfittable_bounds_raise(self):
        with pytest.raises(ValueError, match="unfittable bounds"):
            ParamSpec("bad", 10.0, 5.0)

    def test_unfittable_bounds_error_names_the_parameter(self):
        with pytest.raises(ValueError, match="'bad'"):
            ParamSpec("bad", 10.0, 5.0)

    def test_zero_grid_points_raise(self):
        with pytest.raises(ValueError, match="at least one grid point"):
            ParamSpec("bad", 0.0, 1.0, points=0)

    def test_linspace_spans_bounds(self):
        spec = ParamSpec("p", 0.0, 8.0, points=5)
        assert spec.linspace() == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_degenerate_single_point_grid(self):
        """``lo == hi`` is a pinned parameter: one candidate, always."""
        spec = ParamSpec("pinned", 3.0, 3.0)
        assert spec.linspace() == [3.0]
        assert spec.linspace(0.0, 10.0) == [3.0]
        assert spec.mid == 3.0

    def test_points_one_is_degenerate(self):
        spec = ParamSpec("p", 0.0, 10.0, points=1)
        assert spec.linspace() == [0.0]

    def test_window_clamps_into_bounds(self):
        spec = ParamSpec("p", 0.0, 10.0, points=3)
        assert spec.linspace(-5.0, 5.0) == [0.0, 2.5, 5.0]
        assert spec.linspace(8.0, 20.0) == [8.0, 9.0, 10.0]

    def test_inverted_window_collapses(self):
        spec = ParamSpec("p", 0.0, 10.0)
        # Window entirely above the bounds: clamp produces hi <= lo.
        assert spec.linspace(12.0, 20.0) == [10.0]


class TestMape:
    def test_exact_is_zero(self):
        assert mape([(10.0, 10.0), (5.0, 5.0)]) == 0.0

    def test_percentage(self):
        assert mape([(100.0, 110.0)]) == pytest.approx(10.0)

    def test_zero_observations_excluded(self):
        # The zero-observed point contributes nothing when predicted 0.
        assert mape([(0.0, 0.0), (10.0, 11.0)]) == pytest.approx(10.0)

    def test_all_zero_matched_is_zero(self):
        assert mape([(0.0, 0.0)]) == 0.0

    def test_zero_observed_nonzero_predicted_is_infinite(self):
        assert math.isinf(mape([(0.0, 1.0)]))
