"""Registry integrity and O(1) serving-tier sanity: every registered
model predicts a finite value from the committed artifact, without
touching the simulator."""

import math

import pytest

from repro.models import (
    REGISTRY,
    all_models,
    artifact_results,
    get_model,
    load_artifact,
)

#: One representative stimulus point per registered model.
SAMPLE_POINTS = {
    "local_read": {"size": 65536, "stride": 64},
    "local_write": {"size": 65536, "stride": 64},
    "remote_read": {"hops": 2},
    "remote_write": {"mechanism": "blocking", "size": 65536,
                     "stride": 64},
    "prefetch": {"group": 8},
    "blt": {"direction": "read", "nbytes": 65536},
    "bulk_transfer": {"direction": "write", "nbytes": 4096},
    "fig1_local_read": {"size": 262144, "stride": 16384},
    "fig2_local_write": {"size": 262144, "stride": 16384},
    "fig4_remote_read": {"mechanism": "cached", "size": 65536,
                         "stride": 32},
    "fig5_remote_write": {"mechanism": "splitc", "size": 65536,
                          "stride": 64},
    "fig7_nonblocking_store": {"mechanism": "store", "size": 65536,
                               "stride": 64},
    "fig8_bulk_bandwidth": {"direction": "read", "mechanism": "blt",
                            "nbytes": 131072},
    "em3d_scaling": {"version": "bulk", "fraction": 0.2},
}


def test_registry_names_match_instances():
    for name, cls in REGISTRY.items():
        assert cls().name == name


def test_all_models_covers_registry_exactly():
    assert {m.name for m in all_models()} == set(REGISTRY)
    assert len(all_models()) == len(REGISTRY)


def test_get_model_unknown_name_is_a_clear_error():
    with pytest.raises(KeyError, match="unknown model 'nope'"):
        get_model("nope")


def test_sample_points_cover_every_model():
    assert set(SAMPLE_POINTS) == set(REGISTRY)


@pytest.mark.parametrize("name", sorted(SAMPLE_POINTS))
def test_predict_from_committed_artifact_is_finite(name):
    fitted = {r.model: r for r in artifact_results(load_artifact())}
    model = get_model(name)
    value = model.predict(fitted[name].params, model.machine,
                          SAMPLE_POINTS[name])
    assert isinstance(value, float)
    assert math.isfinite(value)
    assert value > 0.0


@pytest.mark.parametrize("name", sorted(SAMPLE_POINTS))
def test_default_params_respect_declared_bounds(name):
    model = get_model(name)
    params = model.default_params()
    assert set(params) == {s.name for s in model.param_specs}
    for spec in model.param_specs:
        assert spec.lo <= params[spec.name] <= spec.hi


def test_committed_artifact_params_lie_within_declared_bounds():
    fitted = {r.model: r for r in artifact_results(load_artifact())}
    for name, cls in REGISTRY.items():
        model = cls()
        entry = fitted[name]
        for spec in model.param_specs:
            value = entry.params[spec.name]
            assert spec.lo <= value <= spec.hi, (
                f"{name}.{spec.name}={value} outside "
                f"[{spec.lo}, {spec.hi}]")


def test_committed_artifact_meets_recorded_gates():
    """The committed fit must claim to meet its own gates (the live
    re-verification is `make calibrate-check`)."""
    for result in artifact_results(load_artifact()):
        assert result.ok, result.describe()
