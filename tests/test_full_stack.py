"""Full-stack integration: many subsystems composed in one program,
and one machine reused across phases."""

import pytest

from repro.machine.machine import Machine
from repro.params import t3d_machine_params
from repro.splitc.am import ActiveMessages
from repro.splitc.collectives import all_reduce, broadcast
from repro.splitc.gptr import GlobalPtr
from repro.splitc.runtime import run_splitc
from repro.splitc.spread import SpreadArray
from repro.splitc.sync_objects import SpinLock


def test_pipeline_of_features_in_one_program():
    """AM + lock + spread array + bulk + collectives + barriers, all
    in one SPMD program, with value-level verification at each step."""
    machine = Machine(t3d_machine_params((2, 2, 1)))

    def program(sc):
        ctx = sc.ctx
        checks = {}

        # Phase 1: spread array written by owners, read remotely.
        arr = SpreadArray(sc, 16)
        for i in arr.my_indices():
            arr.write(i, 3 * i)
        yield from sc.barrier()
        checks["spread"] = all(
            arr.read(i) == 3 * i for i in range(16))

        # Phase 2: AM increments into a shared tally on PE 0.
        am = ActiveMessages(sc)
        tally = sc.all_alloc(8)

        def bump(am_, src, amount):
            ctx.local_write(tally, int(ctx.local_read(tally)) + amount)

        handler = am.register_handler(bump)
        am.attach()
        if sc.my_pe == 0:
            ctx.local_write(tally, 0)
            ctx.memory_barrier()
        yield from sc.barrier()
        if sc.my_pe != 0:
            am.send(0, handler, sc.my_pe)
        yield from sc.barrier()
        if sc.my_pe == 0:
            while am.poll() is not None:
                pass
            ctx.memory_barrier()
            checks["am_tally"] = int(ctx.local_read(tally)) == 1 + 2 + 3

        # Phase 3: a locked read-modify-write on the same tally.
        lock = SpinLock(sc, owner=0)
        yield from lock.acquire()
        value = sc.read(GlobalPtr(0, tally))
        sc.write(GlobalPtr(0, tally), int(value) + 10)
        lock.release()
        yield from sc.barrier()
        checks["locked_total"] = sc.read(GlobalPtr(0, tally)) == 6 + 40

        # Phase 4: bulk move the spread array's backing into a local
        # buffer and all_reduce a checksum.
        dst = ctx.node.heap.alloc(16 * 8)
        arr.bulk_read_range(0, 16, dst)
        ctx.memory_barrier()
        local_sum = sum(int(ctx.node.memsys.memory.load(dst + k * 8))
                        for k in range(16))
        total = yield from all_reduce(sc, local_sum)
        checks["bulk_checksum"] = total == 4 * sum(3 * i
                                                   for i in range(16))

        # Phase 5: broadcast a verdict.
        verdict = yield from broadcast(
            sc, root=0, value=("ok" if sc.my_pe == 0 else None))
        checks["broadcast"] = verdict == "ok"
        return checks

    results, _ = run_splitc(machine, program)
    for pe, checks in enumerate(results):
        for name, passed in checks.items():
            assert passed, (pe, name)


def test_one_machine_many_apps_sequentially():
    """Apps can share one machine when run back to back (heaps stay
    symmetric because every app allocates collectively)."""
    from repro.apps.stencil import reference_stencil, run_stencil
    from repro.apps.histogram import run_histogram

    machine = Machine(t3d_machine_params((2, 2, 1)))
    stencil = run_stencil(machine, cells_per_pe=8, steps=2)
    ref = reference_stencil(4, 8, 2)
    for pe in range(4):
        assert stencil.values[pe] == pytest.approx(ref[pe])

    histogram = run_histogram(machine, num_bins=8, samples_per_pe=20,
                              method="am")
    assert histogram.lost_updates == 0


def test_clock_monotonicity_across_a_big_program():
    """Thread clocks never go backwards through any primitive."""
    machine = Machine(t3d_machine_params((2, 2, 1)))

    def program(sc):
        ctx = sc.ctx
        last = [ctx.clock]

        def check():
            assert ctx.clock >= last[0]
            last[0] = ctx.clock

        base = sc.all_alloc(64)
        for i in range(4):
            sc.put(GlobalPtr((sc.my_pe + 1) % 4, base + i * 8), i)
            check()
        sc.sync()
        check()
        yield from sc.barrier()
        check()
        sc.bulk_read(base, GlobalPtr((sc.my_pe + 2) % 4, base), 32)
        check()
        yield from sc.all_store_sync()
        check()
        return last[0]

    results, _ = run_splitc(machine, program)
    assert all(r > 0 for r in results)
