"""Tests for the figure-series exporter."""

import pytest

from repro.cli import main
from repro.reporting.series import SERIES, generate_series, to_csv


def test_every_figure_has_a_series():
    for name in ("fig1", "fig2", "fig4", "fig5", "fig6", "fig7",
                 "fig8", "fig9"):
        assert name in SERIES


def test_fig6_series_shape():
    rows = generate_series("fig6")
    mechanisms = {r["mechanism"] for r in rows}
    assert mechanisms == {"prefetch", "splitc_get"}
    prefetch = {r["group"]: r["cycles_per_element"]
                for r in rows if r["mechanism"] == "prefetch"}
    assert prefetch[1] > prefetch[16]


def test_fig8_series_shape():
    rows = generate_series("fig8", quick=True)
    assert {r["direction"] for r in rows} == {"read", "write"}
    blt = {r["size_bytes"]: r["mb_per_s"] for r in rows
           if r["direction"] == "read" and r["mechanism"] == "blt"}
    assert blt[32 * 1024] > blt[128]


def test_fig2_series_rows_have_curve_keys():
    rows = generate_series("fig2", quick=True)
    assert rows
    assert set(rows[0]) == {"machine", "op", "size_bytes",
                            "stride_bytes", "avg_cycles", "avg_ns"}


def test_to_csv_round_trip():
    rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
    text = to_csv(rows)
    assert text.splitlines() == ["a,b", "1,x", "2,y"]
    assert to_csv([]) == ""


def test_unknown_series_rejected():
    with pytest.raises(ValueError):
        generate_series("fig99")


def test_series_cli(tmp_path, capsys):
    target = tmp_path / "fig6.csv"
    assert main(["series", "fig6", "-o", str(target)]) == 0
    text = target.read_text()
    assert text.startswith("mechanism,group")
    assert "prefetch,16" in text
