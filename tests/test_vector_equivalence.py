"""Golden three-way equivalence: reference == fast == vectorized.

The vectorized tier (:mod:`repro.vector`) joins the fast paths of
``tests/test_fastpath_equivalence.py`` under the same doctrine: a tier
is correct only if it reproduces the reference model *bit for bit* —
same floats, same access counts — across every claimed probe family
and machine shape.  Each test runs one probe three times on a cold
machine:

* **reference** — ``sweep_fn=None``: the per-access harness loop;
* **fast** — ``REPRO_VECTOR=0``: the probes fall back to the batched
  ``read_sweep`` / ``write_sweep`` model paths;
* **vectorized** — ``REPRO_VECTOR=1``: the numpy tier.

The point memo is cleared between runs so every tier computes every
point itself.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from repro.machine.machine import Machine
from repro.microbench import probes
from repro.microbench.harness import clear_probe_memo
from repro.node.memsys import t3d_memory_system, workstation_memory_system
from repro.params import t3d_machine_params

KB = 1024

#: Cache- and TLB-exercising geometry: spans the 8 KB L1, the
#: workstation's 256 KB TLB reach, and the DRAM interleave.
PROBE_SIZES = [4 * KB, 16 * KB, 64 * KB, 512 * KB]


def _points(curves):
    return [(p.size, p.stride, p.avg_cycles, p.accesses)
            for p in curves.points]


def _three_tiers(monkeypatch, run, run_reference):
    """Run a probe on all three tiers, memo cleared between runs."""
    monkeypatch.setenv("REPRO_VECTOR", "1")
    clear_probe_memo()
    vectorized = run()
    monkeypatch.setenv("REPRO_VECTOR", "0")
    clear_probe_memo()
    fast = run()
    clear_probe_memo()
    reference = run_reference()
    clear_probe_memo()
    return vectorized, fast, reference


@pytest.mark.parametrize("make_memsys", [t3d_memory_system,
                                         workstation_memory_system],
                         ids=["t3d", "workstation"])
def test_local_read_three_tiers_identical(monkeypatch, make_memsys):
    vec, fast, ref = _three_tiers(
        monkeypatch,
        lambda: probes.local_read_probe(make_memsys(), sizes=PROBE_SIZES,
                                        memo_key=None),
        lambda: probes.local_read_probe(make_memsys(), sizes=PROBE_SIZES,
                                        sweep_fn=None, memo_key=None))
    assert _points(vec) == _points(ref)
    assert _points(fast) == _points(ref)


@pytest.mark.parametrize("make_memsys", [t3d_memory_system,
                                         workstation_memory_system],
                         ids=["t3d", "workstation"])
def test_local_write_three_tiers_identical(monkeypatch, make_memsys):
    vec, fast, ref = _three_tiers(
        monkeypatch,
        lambda: probes.local_write_probe(make_memsys(), sizes=PROBE_SIZES,
                                         memo_key=None),
        lambda: probes.local_write_probe(make_memsys(), sizes=PROBE_SIZES,
                                         sweep_fn=None, memo_key=None))
    assert _points(vec) == _points(ref)
    assert _points(fast) == _points(ref)


@pytest.mark.parametrize("mechanism", ["uncached", "cached", "splitc"])
def test_remote_read_three_tiers_identical(monkeypatch, mechanism):
    def run(**kw):
        machine = Machine(t3d_machine_params((2, 1, 1)))
        return probes.remote_read_probe(machine, mechanism=mechanism,
                                        sizes=[16 * KB, 64 * KB],
                                        memo_key=None, **kw)

    vec, fast, ref = _three_tiers(
        monkeypatch, run, lambda: run(sweep_fn=None))
    # remote_read has no fast-tier sweep, so REPRO_VECTOR=0 already
    # runs the reference loop — the comparison is still three runs.
    assert _points(vec) == _points(ref)
    assert _points(fast) == _points(ref)


def test_streaming_bandwidth_tiers_identical(monkeypatch):
    for make_memsys in (t3d_memory_system, workstation_memory_system):
        monkeypatch.setenv("REPRO_VECTOR", "1")
        vec = probes.streaming_bandwidth_probe(make_memsys(), nbytes=64 * KB)
        monkeypatch.setenv("REPRO_VECTOR", "0")
        ref = probes.streaming_bandwidth_probe(make_memsys(), nbytes=64 * KB)
        assert vec == ref


def test_memoized_replay_matches_fresh_compute(monkeypatch):
    """Cross-tier memo safety: a point memoized by one tier replays for
    another only because the tiers are bit-identical — assert the
    memoized curves equal a fresh memo-less run."""
    monkeypatch.setenv("REPRO_VECTOR", "1")
    clear_probe_memo()
    memoized = probes.local_read_probe(t3d_memory_system(),
                                       sizes=PROBE_SIZES)
    replayed = probes.local_read_probe(t3d_memory_system(),
                                       sizes=PROBE_SIZES)
    fresh = probes.local_read_probe(t3d_memory_system(), sizes=PROBE_SIZES,
                                    memo_key=None)
    clear_probe_memo()
    assert _points(memoized) == _points(fresh)
    assert _points(replayed) == _points(fresh)
