"""Golden-equivalence suite: the fast paths ARE the reference model.

Every batched/inlined fast path added for performance keeps an escape
hatch back to the reference per-access implementation:

* probe harness: ``sweep_fn=None`` / ``memo_key=None`` force the
  per-access loop and disable the point memo;
* ``repro.splitc.bulk.USE_BATCHED_BULK`` — inlined bulk word loops;
* ``repro.shell.blt.USE_BATCHED_COPY`` — range-op BLT data movement;
* ``repro.apps.em3d.kernels.USE_FAST_COMPUTE`` — the inlined EM3D
  compute phase.

These tests run the same experiment down both paths and assert the
results are *identical* — same floats, same counters, same memory
contents — not merely close.  Any divergence means a fast path changed
the model, which is a correctness bug regardless of which side is
right.
"""

from __future__ import annotations

from contextlib import contextmanager

import pytest

from repro.machine.machine import Machine
from repro.microbench import probes
from repro.microbench.harness import clear_probe_memo
from repro.node.memsys import t3d_memory_system, workstation_memory_system
from repro.params import WORD_BYTES, t3d_machine_params
from repro.shell import blt as blt_mod
from repro.splitc import bulk
from repro.splitc.gptr import GlobalPtr
from repro.splitc.runtime import SplitC

KB = 1024

#: Small but cache-exercising probe geometry: spans the 8 KB L1 so the
#: curves contain hit, miss, and page-crossing regimes.
PROBE_SIZES = [4 * KB, 16 * KB, 64 * KB]


@contextmanager
def _reference_paths():
    """Temporarily flip every fast-path escape hatch to the reference
    implementation."""
    saved = (bulk.USE_BATCHED_BULK, blt_mod.USE_BATCHED_COPY)
    bulk.USE_BATCHED_BULK = False
    blt_mod.USE_BATCHED_COPY = False
    try:
        yield
    finally:
        bulk.USE_BATCHED_BULK, blt_mod.USE_BATCHED_COPY = saved


def _points(curves):
    return [(p.size, p.stride, p.avg_cycles, p.accesses)
            for p in curves.points]


# ----------------------------------------------------------------------
# Figure 1 / Figure 2: local read and write sweeps
# ----------------------------------------------------------------------

@pytest.mark.parametrize("make_memsys", [t3d_memory_system,
                                         workstation_memory_system],
                         ids=["t3d", "workstation"])
def test_fig1_read_sweep_matches_reference(make_memsys):
    fast = probes.local_read_probe(make_memsys(), sizes=PROBE_SIZES,
                                   memo_key=None)
    ref = probes.local_read_probe(make_memsys(), sizes=PROBE_SIZES,
                                  sweep_fn=None, memo_key=None)
    assert _points(fast) == _points(ref)


@pytest.mark.parametrize("make_memsys", [t3d_memory_system,
                                         workstation_memory_system],
                         ids=["t3d", "workstation"])
def test_fig2_write_sweep_matches_reference(make_memsys):
    fast = probes.local_write_probe(make_memsys(), sizes=PROBE_SIZES,
                                    memo_key=None)
    ref = probes.local_write_probe(make_memsys(), sizes=PROBE_SIZES,
                                   sweep_fn=None, memo_key=None)
    assert _points(fast) == _points(ref)


def test_probe_memo_replays_identical_points():
    clear_probe_memo()
    ms = t3d_memory_system()
    first = probes.local_read_probe(ms, sizes=PROBE_SIZES)
    replay = probes.local_read_probe(ms, sizes=PROBE_SIZES)
    no_memo = probes.local_read_probe(ms, sizes=PROBE_SIZES, memo_key=None)
    assert _points(first) == _points(replay) == _points(no_memo)


# ----------------------------------------------------------------------
# Figure 4: remote read probe (memoized vs direct)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("mechanism", ["uncached", "cached", "splitc"])
def test_fig4_remote_read_memo_matches_direct(mechanism):
    clear_probe_memo()
    memo = probes.remote_read_probe(mechanism=mechanism, sizes=PROBE_SIZES)
    direct = probes.remote_read_probe(mechanism=mechanism,
                                      sizes=PROBE_SIZES, memo_key=None)
    assert _points(memo) == _points(direct)


# ----------------------------------------------------------------------
# Figure 8: bulk transfers, batched vs per-word reference
# ----------------------------------------------------------------------

FIG8_SIZES = [8, 32, 512, 2 * KB, 8 * KB, 32 * KB]


def test_fig8_bulk_read_curves_match_reference():
    fast = probes.bulk_read_bandwidth_probe(sizes=FIG8_SIZES)
    with _reference_paths():
        ref = probes.bulk_read_bandwidth_probe(sizes=FIG8_SIZES)
    assert fast == ref


def test_fig8_bulk_write_curves_match_reference():
    fast = probes.bulk_write_bandwidth_probe(sizes=FIG8_SIZES[1:])
    with _reference_paths():
        ref = probes.bulk_write_bandwidth_probe(sizes=FIG8_SIZES[1:])
    assert fast == ref


def _fresh_sc():
    machine = Machine(t3d_machine_params((2, 1, 1)))
    return machine, SplitC(machine.make_contexts()[0])


def _machine_fingerprint(machine, sc):
    """Every observable the word loops touch: clocks, counters, and the
    raw memory words of both nodes."""
    out = [sc.ctx.clock]
    for pe in range(machine.num_nodes):
        node = machine.node(pe)
        ms = node.memsys
        out.append((pe, ms.l1.hits, ms.l1.misses,
                    ms.dram.accesses, ms.dram.row_misses,
                    ms.dram.same_bank_conflicts,
                    ms.write_buffer.merged_writes,
                    ms.write_buffer.drained_entries,
                    node.remote.reads, node.remote.stores,
                    sorted(ms.memory.items())))
    return out


@pytest.mark.parametrize("op", ["write_stores", "read_uncached",
                                "local_copy", "put"])
def test_bulk_word_loops_state_identical(op):
    def drive(sc):
        if op == "write_stores":
            bulk.bulk_write_stores(sc, GlobalPtr(1, 0x6000), 0x0, 512)
        elif op == "read_uncached":
            bulk.bulk_read_uncached(sc, 0x6000, GlobalPtr(1, 0x0), 512)
        elif op == "local_copy":
            bulk._local_copy(sc, 0x6000, 0x0, 512)
        else:
            sc.bulk_put(GlobalPtr(1, 0x6000), 0x0, 512)
            sc.sync()
        sc.ctx.memory_barrier()
        sc.ctx.clock = sc.ctx.node.remote.wait_for_acks(sc.ctx.clock)

    m_fast, sc_fast = _fresh_sc()
    for i in range(64):
        sc_fast.ctx.node.memsys.memory.store(i * WORD_BYTES, float(i))
    drive(sc_fast)

    with _reference_paths():
        m_ref, sc_ref = _fresh_sc()
        for i in range(64):
            sc_ref.ctx.node.memsys.memory.store(i * WORD_BYTES, float(i))
        drive(sc_ref)

    assert (_machine_fingerprint(m_fast, sc_fast)
            == _machine_fingerprint(m_ref, sc_ref))


@pytest.mark.parametrize("stride", [None, WORD_BYTES, 64])
def test_blt_batched_copy_identical(stride):
    def drive(sc):
        node = sc.ctx.node
        cycles, xfer = node.blt.start_read(sc.ctx.clock, 1, 0x0, 0x6000,
                                           256, stride)
        sc.ctx.charge(cycles)
        sc.ctx.clock = node.blt.wait(sc.ctx.clock, xfer)
        cycles, xfer = node.blt.start_write(sc.ctx.clock, 1, 0x8000, 0x6000,
                                            256, stride)
        sc.ctx.charge(cycles)
        sc.ctx.clock = node.blt.wait(sc.ctx.clock, xfer)

    m_fast, sc_fast = _fresh_sc()
    src = m_fast.node(1).memsys.memory
    for i in range(64):
        src.store(i * WORD_BYTES, 1000.0 + i)
    drive(sc_fast)

    with _reference_paths():
        m_ref, sc_ref = _fresh_sc()
        src = m_ref.node(1).memsys.memory
        for i in range(64):
            src.store(i * WORD_BYTES, 1000.0 + i)
        drive(sc_ref)

    assert (_machine_fingerprint(m_fast, sc_fast)
            == _machine_fingerprint(m_ref, sc_ref))


# ----------------------------------------------------------------------
# Figure 9: the EM3D compute-phase fast path
# ----------------------------------------------------------------------

def test_fig9_em3d_sweep_matches_reference():
    from repro.apps.em3d import driver, kernels

    kw = dict(fractions=(0.0, 0.5), nodes_per_pe=30, degree=4,
              shape=(2, 1, 1))
    fast = driver.sweep(**kw)
    saved = kernels.USE_FAST_COMPUTE
    kernels.USE_FAST_COMPUTE = False
    try:
        ref = driver.sweep(**kw)
    finally:
        kernels.USE_FAST_COMPUTE = saved
    assert fast == ref


def test_fig9_ghost_fill_fast_path_matches_reference():
    """The inlined ghost-fill loops (reads and puts) must reproduce the
    generic ``read_from``/``put_to`` paths exactly — every version that
    fills ghosts, at a communication-heavy fraction."""
    from repro.apps.em3d import driver, kernels

    kw = dict(fractions=(0.2, 0.5),
              versions=("bundle", "unroll", "put", "msg"),
              nodes_per_pe=30, degree=4, shape=(2, 1, 1))
    fast = driver.sweep(**kw)
    saved = kernels.USE_FAST_FILL
    kernels.USE_FAST_FILL = False
    try:
        ref = driver.sweep(**kw)
    finally:
        kernels.USE_FAST_FILL = saved
    assert fast == ref
