"""Documentation integrity: every file path the docs reference exists,
and the repo's deliverable files are present."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

DOCS = ["README.md", "DESIGN.md", "docs/timing_model.md",
        "docs/api_guide.md", "docs/paper_map.md",
        "docs/observability.md", "docs/performance.md",
        "docs/models.md"]

#: Path-like references worth checking: backticked repo-relative paths.
_PATH_RE = re.compile(
    r"`((?:src/|tests/|benchmarks/|examples/|docs/|repro/)"
    r"[A-Za-z0-9_/.]+\.(?:py|md))`")


def test_deliverable_files_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
                 "pyproject.toml"):
        assert (ROOT / name).exists(), name
    for name in DOCS:
        assert (ROOT / name).exists(), name


@pytest.mark.parametrize("doc", DOCS)
def test_doc_path_references_resolve(doc):
    text = (ROOT / doc).read_text()
    missing = []
    for match in _PATH_RE.finditer(text):
        path = match.group(1)
        candidates = [ROOT / path, ROOT / "src" / path]
        if not any(c.exists() for c in candidates):
            missing.append(path)
    assert not missing, f"{doc} references missing files: {missing}"


def test_design_lists_every_benchmark_that_exists():
    text = (ROOT / "DESIGN.md").read_text()
    bench_refs = set(re.findall(r"benchmarks/([A-Za-z0-9_]+\.py)", text))
    for ref in bench_refs:
        assert (ROOT / "benchmarks" / ref).exists(), ref


def test_examples_mentioned_in_readme_exist():
    text = (ROOT / "README.md").read_text()
    for match in re.findall(r"examples/([A-Za-z0-9_]+\.py)", text):
        assert (ROOT / "examples" / match).exists(), match


def test_readme_mentions_all_examples():
    text = (ROOT / "README.md").read_text()
    on_disk = {p.name for p in (ROOT / "examples").glob("*.py")}
    mentioned = set(re.findall(r"examples/([A-Za-z0-9_]+\.py)", text))
    assert on_disk <= mentioned | {"__init__.py"}, \
        f"undocumented examples: {on_disk - mentioned}"


def test_experiment_index_in_design_covers_f_and_t_ids():
    text = (ROOT / "DESIGN.md").read_text()
    for exp_id in ["F1", "F2", "F4", "F5", "F6", "F7", "F8", "F9",
                   "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8",
                   "T9", "T10", "A1", "A2", "A3", "A4"]:
        assert f"| {exp_id} " in text, exp_id


# ------------------------------------------------------- CLI consistency

#: ``repro <subcommand>`` / ``python -m repro <subcommand>`` mentions.
#: Restricted to code spans and fenced blocks so prose like "the repro
#: is calibrated" never false-positives.
_CLI_RE = re.compile(r"(?:python -m )?\brepro ([a-z][a-z0-9]*)\b")


def _code_snippets(text: str):
    """Every fenced code block and inline code span in a document."""
    yield from re.findall(r"```[a-z]*\n(.*?)```", text, re.DOTALL)
    yield from re.findall(r"`([^`\n]+)`", text)


def _cli_subcommands() -> set:
    from repro.cli import build_parser
    parser = build_parser()
    for action in parser._subparsers._group_actions:
        if hasattr(action, "choices"):
            return set(action.choices)
    raise AssertionError("no subparsers found on the repro parser")


@pytest.mark.parametrize("doc", DOCS)
def test_every_repro_subcommand_mentioned_in_docs_exists(doc):
    commands = _cli_subcommands()
    text = (ROOT / doc).read_text()
    unknown = []
    for snippet in _code_snippets(text):
        for word in _CLI_RE.findall(snippet):
            if word not in commands:
                unknown.append(word)
    assert not unknown, (
        f"{doc} mentions repro subcommands that don't exist: "
        f"{sorted(set(unknown))} (have: {sorted(commands)})")


def test_docs_mention_the_new_observability_commands():
    readme = (ROOT / "README.md").read_text()
    for command in ("repro trace", "repro counters"):
        assert command in readme, command


def _option_strings(parser) -> set:
    return {s for action in parser._actions for s in action.option_strings}


def _subparser_choices(parser) -> dict:
    import argparse
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    return {}


@pytest.mark.parametrize("doc", DOCS)
def test_documented_cli_flags_exist(doc):
    """Every ``--flag`` shown on a documented ``repro ...`` command
    line is actually registered on that (sub)command's parser."""
    from repro.cli import build_parser
    root = build_parser()
    text = (ROOT / doc).read_text()
    problems = []
    for snippet in _code_snippets(text):
        for line in snippet.splitlines():
            m = re.search(r"\brepro\s+(.+)$", line)
            if not m:
                continue
            tokens = m.group(1).split()
            parser, allowed = root, _option_strings(root)
            for token in tokens:
                choices = _subparser_choices(parser)
                if token in choices:
                    parser = choices[token]
                    allowed |= _option_strings(parser)
                else:
                    break
            for token in tokens:
                token = token.strip("[]").split("=")[0]
                is_flag = token.startswith("--") or (
                    len(token) == 2 and token.startswith("-")
                    and token[1].isalpha())
                if is_flag and token not in allowed:
                    problems.append(f"{line.strip()!r}: {token}")
    assert not problems, (
        f"{doc} documents CLI flags that don't exist: {problems}")


def test_every_env_knob_documented_in_performance_doc():
    """Every ``REPRO_*`` environment variable the source consults is a
    documented knob in docs/performance.md."""
    consulted = set()
    for path in (ROOT / "src").rglob("*.py"):
        consulted |= set(re.findall(r"REPRO_[A-Z_]+", path.read_text()))
    text = (ROOT / "docs/performance.md").read_text()
    missing = sorted(v for v in consulted if v not in text)
    assert not missing, (
        f"docs/performance.md does not document env knobs: {missing}")


def test_cohort_knob_documented_and_registered():
    """The scheduler escape hatch exists in both spellings: the
    ``--no-cohort`` flag on ``repro experiments`` and the
    ``REPRO_COHORT`` variable, each covered by the docs."""
    from repro.cli import build_parser
    experiments = _subparser_choices(build_parser())["experiments"]
    assert "--no-cohort" in _option_strings(experiments)
    assert "--no-vector" in _option_strings(experiments)
    for doc in ("docs/performance.md", "docs/timing_model.md"):
        text = (ROOT / doc).read_text()
        assert "REPRO_COHORT" in text, doc
        assert "--no-cohort" in text, doc


def test_weak_scaling_snapshot_matches_doc_claims():
    """The committed BENCH_PR10 weak-scaling curve honors the flatness
    bound docs/performance.md documents, the 1024-PE point holds the
    segment-tier speed target, and the capacity point carries its
    footprint gauge."""
    import json
    snapshot = json.loads((ROOT / "BENCH_PR10.json").read_text())
    curve = snapshot["weak_scaling"]["us_per_edge"]
    assert {"16", "64", "256", "1024"} <= set(curve)
    assert curve["1024"] < 1.3 * curve["16"]
    walls = snapshot["weak_scaling"]["wall_seconds"]
    assert walls["1024"] <= 14.0

    point = snapshot["million_point"]
    assert point["nodes_per_pe"] >= 1 << 20
    footprint = point["footprint"]
    assert footprint["words_allocated"] > 10**7
    assert footprint["segment_bytes"] > 0
    assert footprint["peak_rss_kb"] > 0


# --------------------------------------------- model-catalog consistency

def test_every_registered_model_documented_in_catalog():
    from repro.models import REGISTRY
    text = (ROOT / "docs/models.md").read_text()
    missing = [name for name in REGISTRY if f"`{name}`" not in text]
    assert not missing, (
        f"docs/models.md is missing catalog entries for: {missing}")


def test_catalog_registry_table_rows_are_registered_models():
    """The catalog's registry table may not advertise models that no
    longer exist (the converse of the completeness check)."""
    from repro.models import REGISTRY
    text = (ROOT / "docs/models.md").read_text()
    section = text.split("## Registry")[1].split("\n## ")[0]
    rows = re.findall(r"^\| \[`([a-z0-9_]+)`\]", section, re.MULTILINE)
    assert rows, "registry table not found in docs/models.md"
    stale = [name for name in rows if name not in REGISTRY]
    assert not stale, f"docs/models.md registry table lists unknown " \
                      f"models: {stale}"


def test_fitted_artifact_covers_every_registered_model():
    from repro.models import REGISTRY, load_artifact
    payload = load_artifact()
    missing = sorted(set(REGISTRY) - set(payload["models"]))
    assert not missing, (
        f"FITTED_MODELS.json has no fit for: {missing} "
        f"(run `make calibrate`)")


def test_no_dead_relative_links_in_docs():
    """Same check `make docs-check` runs via tools/check_doc_links.py."""
    import importlib.util
    spec = importlib.util.spec_from_file_location(
        "check_doc_links", ROOT / "tools" / "check_doc_links.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    bad = []
    for path in mod.doc_files():
        for target in mod.dead_links(path):
            bad.append(f"{path.relative_to(ROOT)}: {target}")
    assert not bad, f"dead relative links: {bad}"


# ------------------------------------------- event-catalog consistency

#: First cell of each event-catalog table row: | `event_name` | ...
_EVENT_ROW_RE = re.compile(r"^\| `([a-z_]+)` \|", re.MULTILINE)


def test_observability_event_catalog_matches_registry():
    from repro.trace.events import EVENT_TYPES

    text = (ROOT / "docs/observability.md").read_text()
    section = text.split("## Event catalog")[1].split("\n## ")[0]
    documented = set(_EVENT_ROW_RE.findall(section))
    registered = set(EVENT_TYPES)
    assert documented == registered, (
        f"undocumented events: {sorted(registered - documented)}; "
        f"documented but unregistered: {sorted(documented - registered)}")


def test_observability_counter_catalog_matches_providers():
    """Every unit kind documented in the counter catalog registers
    exactly the documented counter names."""
    from repro.trace import tracer as trace
    from repro.params import t3d_machine_params
    from repro.machine.machine import Machine

    text = (ROOT / "docs/observability.md").read_text()
    section = text.split("## Counter catalog")[1].split("\n## ")[0]
    documented = {}
    for line in section.splitlines():
        m = re.match(r"^\| `([a-z_]+)` \| (.+) \|$", line)
        if m:
            documented[m.group(1)] = set(
                re.findall(r"`([a-z_.]+)`", m.group(2)))

    trace.disable()
    trace.TRACER.reset()
    trace.enable()
    try:
        Machine(t3d_machine_params((2, 1, 1)))
        harvested = trace.TRACER.provider_counters()
    finally:
        trace.disable()
        trace.TRACER.reset()

    assert set(documented) == set(harvested), (
        f"catalog kinds {sorted(documented)} != "
        f"registered kinds {sorted(harvested)}")
    for kind, counters in harvested.items():
        actual = set(counters) - {"instances"}
        assert documented[kind] == actual, (
            f"{kind}: documented {sorted(documented[kind])}, "
            f"actual {sorted(actual)}")


def test_version_agrees_everywhere():
    """One release number: ``repro.__version__``, ``pyproject.toml``,
    and the newest CHANGELOG.md heading must match (PR 8 fixed a
    three-way skew here)."""
    import repro

    pyproject = (ROOT / "pyproject.toml").read_text()
    m = re.search(r'^version = "([^"]+)"$', pyproject, re.MULTILINE)
    assert m, "pyproject.toml has no version line"
    assert m.group(1) == repro.__version__

    changelog = (ROOT / "CHANGELOG.md").read_text()
    m = re.search(r"^## ([0-9][0-9a-z.]*)", changelog, re.MULTILINE)
    assert m, "CHANGELOG.md has no release heading"
    assert m.group(1) == repro.__version__
