"""Documentation integrity: every file path the docs reference exists,
and the repo's deliverable files are present."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

DOCS = ["README.md", "DESIGN.md", "docs/timing_model.md",
        "docs/api_guide.md", "docs/paper_map.md"]

#: Path-like references worth checking: backticked repo-relative paths.
_PATH_RE = re.compile(
    r"`((?:src/|tests/|benchmarks/|examples/|docs/|repro/)"
    r"[A-Za-z0-9_/.]+\.(?:py|md))`")


def test_deliverable_files_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
                 "pyproject.toml"):
        assert (ROOT / name).exists(), name
    for name in DOCS:
        assert (ROOT / name).exists(), name


@pytest.mark.parametrize("doc", DOCS)
def test_doc_path_references_resolve(doc):
    text = (ROOT / doc).read_text()
    missing = []
    for match in _PATH_RE.finditer(text):
        path = match.group(1)
        candidates = [ROOT / path, ROOT / "src" / path]
        if not any(c.exists() for c in candidates):
            missing.append(path)
    assert not missing, f"{doc} references missing files: {missing}"


def test_design_lists_every_benchmark_that_exists():
    text = (ROOT / "DESIGN.md").read_text()
    bench_refs = set(re.findall(r"benchmarks/([A-Za-z0-9_]+\.py)", text))
    for ref in bench_refs:
        assert (ROOT / "benchmarks" / ref).exists(), ref


def test_examples_mentioned_in_readme_exist():
    text = (ROOT / "README.md").read_text()
    for match in re.findall(r"examples/([A-Za-z0-9_]+\.py)", text):
        assert (ROOT / "examples" / match).exists(), match


def test_readme_mentions_all_examples():
    text = (ROOT / "README.md").read_text()
    on_disk = {p.name for p in (ROOT / "examples").glob("*.py")}
    mentioned = set(re.findall(r"examples/([A-Za-z0-9_]+\.py)", text))
    assert on_disk <= mentioned | {"__init__.py"}, \
        f"undocumented examples: {on_disk - mentioned}"


def test_experiment_index_in_design_covers_f_and_t_ids():
    text = (ROOT / "DESIGN.md").read_text()
    for exp_id in ["F1", "F2", "F4", "F5", "F6", "F7", "F8", "F9",
                   "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8",
                   "T9", "T10", "A1", "A2", "A3", "A4"]:
        assert f"| {exp_id} " in text, exp_id
