"""Documentation integrity: every file path the docs reference exists,
and the repo's deliverable files are present."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

DOCS = ["README.md", "DESIGN.md", "docs/timing_model.md",
        "docs/api_guide.md", "docs/paper_map.md",
        "docs/observability.md", "docs/performance.md"]

#: Path-like references worth checking: backticked repo-relative paths.
_PATH_RE = re.compile(
    r"`((?:src/|tests/|benchmarks/|examples/|docs/|repro/)"
    r"[A-Za-z0-9_/.]+\.(?:py|md))`")


def test_deliverable_files_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
                 "pyproject.toml"):
        assert (ROOT / name).exists(), name
    for name in DOCS:
        assert (ROOT / name).exists(), name


@pytest.mark.parametrize("doc", DOCS)
def test_doc_path_references_resolve(doc):
    text = (ROOT / doc).read_text()
    missing = []
    for match in _PATH_RE.finditer(text):
        path = match.group(1)
        candidates = [ROOT / path, ROOT / "src" / path]
        if not any(c.exists() for c in candidates):
            missing.append(path)
    assert not missing, f"{doc} references missing files: {missing}"


def test_design_lists_every_benchmark_that_exists():
    text = (ROOT / "DESIGN.md").read_text()
    bench_refs = set(re.findall(r"benchmarks/([A-Za-z0-9_]+\.py)", text))
    for ref in bench_refs:
        assert (ROOT / "benchmarks" / ref).exists(), ref


def test_examples_mentioned_in_readme_exist():
    text = (ROOT / "README.md").read_text()
    for match in re.findall(r"examples/([A-Za-z0-9_]+\.py)", text):
        assert (ROOT / "examples" / match).exists(), match


def test_readme_mentions_all_examples():
    text = (ROOT / "README.md").read_text()
    on_disk = {p.name for p in (ROOT / "examples").glob("*.py")}
    mentioned = set(re.findall(r"examples/([A-Za-z0-9_]+\.py)", text))
    assert on_disk <= mentioned | {"__init__.py"}, \
        f"undocumented examples: {on_disk - mentioned}"


def test_experiment_index_in_design_covers_f_and_t_ids():
    text = (ROOT / "DESIGN.md").read_text()
    for exp_id in ["F1", "F2", "F4", "F5", "F6", "F7", "F8", "F9",
                   "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8",
                   "T9", "T10", "A1", "A2", "A3", "A4"]:
        assert f"| {exp_id} " in text, exp_id


# ------------------------------------------------------- CLI consistency

#: ``repro <subcommand>`` / ``python -m repro <subcommand>`` mentions.
#: Restricted to code spans and fenced blocks so prose like "the repro
#: is calibrated" never false-positives.
_CLI_RE = re.compile(r"(?:python -m )?\brepro ([a-z][a-z0-9]*)\b")


def _code_snippets(text: str):
    """Every fenced code block and inline code span in a document."""
    yield from re.findall(r"```[a-z]*\n(.*?)```", text, re.DOTALL)
    yield from re.findall(r"`([^`\n]+)`", text)


def _cli_subcommands() -> set:
    from repro.cli import build_parser
    parser = build_parser()
    for action in parser._subparsers._group_actions:
        if hasattr(action, "choices"):
            return set(action.choices)
    raise AssertionError("no subparsers found on the repro parser")


@pytest.mark.parametrize("doc", DOCS)
def test_every_repro_subcommand_mentioned_in_docs_exists(doc):
    commands = _cli_subcommands()
    text = (ROOT / doc).read_text()
    unknown = []
    for snippet in _code_snippets(text):
        for word in _CLI_RE.findall(snippet):
            if word not in commands:
                unknown.append(word)
    assert not unknown, (
        f"{doc} mentions repro subcommands that don't exist: "
        f"{sorted(set(unknown))} (have: {sorted(commands)})")


def test_docs_mention_the_new_observability_commands():
    readme = (ROOT / "README.md").read_text()
    for command in ("repro trace", "repro counters"):
        assert command in readme, command


# ------------------------------------------- event-catalog consistency

#: First cell of each event-catalog table row: | `event_name` | ...
_EVENT_ROW_RE = re.compile(r"^\| `([a-z_]+)` \|", re.MULTILINE)


def test_observability_event_catalog_matches_registry():
    from repro.trace.events import EVENT_TYPES

    text = (ROOT / "docs/observability.md").read_text()
    section = text.split("## Event catalog")[1].split("\n## ")[0]
    documented = set(_EVENT_ROW_RE.findall(section))
    registered = set(EVENT_TYPES)
    assert documented == registered, (
        f"undocumented events: {sorted(registered - documented)}; "
        f"documented but unregistered: {sorted(documented - registered)}")


def test_observability_counter_catalog_matches_providers():
    """Every unit kind documented in the counter catalog registers
    exactly the documented counter names."""
    from repro.trace import tracer as trace
    from repro.params import t3d_machine_params
    from repro.machine.machine import Machine

    text = (ROOT / "docs/observability.md").read_text()
    section = text.split("## Counter catalog")[1].split("\n## ")[0]
    documented = {}
    for line in section.splitlines():
        m = re.match(r"^\| `([a-z_]+)` \| (.+) \|$", line)
        if m:
            documented[m.group(1)] = set(
                re.findall(r"`([a-z_.]+)`", m.group(2)))

    trace.disable()
    trace.TRACER.reset()
    trace.enable()
    try:
        Machine(t3d_machine_params((2, 1, 1)))
        harvested = trace.TRACER.provider_counters()
    finally:
        trace.disable()
        trace.TRACER.reset()

    assert set(documented) == set(harvested), (
        f"catalog kinds {sorted(documented)} != "
        f"registered kinds {sorted(harvested)}")
    for kind, counters in harvested.items():
        actual = set(counters) - {"instances"}
        assert documented[kind] == actual, (
            f"{kind}: documented {sorted(documented[kind])}, "
            f"actual {sorted(actual)}")
