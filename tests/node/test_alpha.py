"""Unit tests for Alpha core costs and byte-manipulation semantics."""

import pytest

from repro.node.alpha import (
    AlphaCosts,
    extract_byte,
    insert_byte,
    merge_byte_into_word,
)
from repro.params import AlphaParams


def test_costs():
    costs = AlphaCosts(AlphaParams())
    assert costs.external_register() == pytest.approx(23.0)
    assert costs.memory_barrier() == pytest.approx(4.0)
    assert costs.alu(4) == pytest.approx(2.0)
    assert costs.loop_iteration() == pytest.approx(2.0)
    assert costs.flop_pair() == pytest.approx(6.0)


def test_extract_byte():
    word = 0x0807060504030201
    for i in range(8):
        assert extract_byte(word, i) == i + 1


def test_insert_byte():
    assert insert_byte(0xAB, 0) == 0xAB
    assert insert_byte(0xAB, 3) == 0xAB << 24
    assert insert_byte(0xAB, 7) == 0xAB << 56


def test_merge_byte_round_trips():
    word = 0x1111111111111111
    merged = merge_byte_into_word(word, 0xFF, 2)
    assert extract_byte(merged, 2) == 0xFF
    for i in range(8):
        if i != 2:
            assert extract_byte(merged, i) == 0x11


def test_merge_is_read_modify_write():
    # The defining property of the section 4.5 hazard: merging byte b
    # into a *stale* word loses any concurrent update to other bytes.
    original = 0
    update_by_p0 = merge_byte_into_word(original, 0xAA, 0)
    update_by_p1 = merge_byte_into_word(original, 0xBB, 1)
    # Whoever writes last clobbers the other's byte.
    assert extract_byte(update_by_p1, 0) == 0  # P0's byte lost
    assert extract_byte(update_by_p0, 1) == 0  # P1's byte lost


def test_bounds_checked():
    with pytest.raises(ValueError):
        extract_byte(0, 8)
    with pytest.raises(ValueError):
        insert_byte(0x100, 0)
    with pytest.raises(ValueError):
        merge_byte_into_word(0, 0, -1)
