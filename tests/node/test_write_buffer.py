"""Unit tests for the 21064 write-buffer model (paper section 2.3)."""

import pytest

from repro.node.write_buffer import WriteBuffer
from repro.params import WriteBufferParams


def make_wb(store=None, **overrides):
    applied = {}
    wb = WriteBuffer(
        WriteBufferParams(**overrides),
        apply=(store if store is not None else applied.__setitem__),
    )
    return wb, applied


def test_merging_same_line_is_cheap():
    wb, _ = make_wb()
    cost0 = wb.push(0.0, 0, "a", drain_cost=145.0)
    cost1 = wb.push(3.0, 8, "b", drain_cost=145.0)
    cost2 = wb.push(6.0, 16, "c", drain_cost=145.0)
    assert cost0 == pytest.approx(3.0)
    assert cost1 == pytest.approx(3.0)
    assert cost2 == pytest.approx(3.0)
    assert wb.merged_writes == 2


def test_no_merging_across_lines():
    wb, _ = make_wb()
    wb.push(0.0, 0, "a", drain_cost=145.0)
    wb.push(3.0, 32, "b", drain_cost=145.0)
    assert wb.merged_writes == 0
    assert len(wb._pending) == 2


def test_pipelined_drain_interval_is_cost_over_depth():
    wb, _ = make_wb()
    wb.push(0.0, 0, "a", drain_cost=22.0)
    entry = wb._pending[0]
    assert entry.retire_time == pytest.approx(22.0 / 4)


def test_full_buffer_stalls_until_retire():
    wb, _ = make_wb()
    for i in range(4):
        wb.push(0.0, i * 32, i, drain_cost=22.0)
    # Fifth distinct-line store at t=0: all 4 slots busy; the oldest
    # retires at 5.5, so the store stalls 5.5 cycles on top of issue.
    cost = wb.push(0.0, 4 * 32, 4, drain_cost=22.0)
    assert cost == pytest.approx(3.0 + 5.5)


def test_steady_state_throughput_matches_paper_inference():
    # Distinct lines at back-to-back issue: steady-state cost per write
    # approaches drain/depth (145/4 ~= 36 ns ~= 5.4 cycles) once full.
    wb, _ = make_wb()
    now = 0.0
    costs = []
    for i in range(64):
        c = wb.push(now, i * 32, i, drain_cost=22.0)
        costs.append(c)
        now += c
    steady = sum(costs[8:]) / len(costs[8:])
    assert steady == pytest.approx(22.0 / 4, abs=0.6)


def test_values_invisible_until_retire_then_commit():
    committed = {}
    wb, _ = make_wb(store=lambda a, v: committed.__setitem__(a, v))
    wb.push(0.0, 0, "new", drain_cost=145.0)
    assert committed == {}
    wb.flush_retired(1.0)
    assert committed == {}          # retire at 36.25
    wb.flush_retired(40.0)
    assert committed == {0: "new"}


def test_forwarding_exact_word_only():
    wb, _ = make_wb()
    wb.push(0.0, 0, "pending", drain_cost=145.0)
    found, value = wb.find_word(1.0, 0)
    assert found and value == "pending"
    # A synonym address (same location, different Annex bits) misses.
    synonym = 0 | (1 << 32)
    found, _ = wb.find_word(1.0, synonym)
    assert not found


def test_drain_all_returns_last_retire_and_commits():
    committed = {}
    wb, _ = make_wb(store=lambda a, v: committed.__setitem__(a, v))
    wb.push(0.0, 0, 1, drain_cost=145.0)
    wb.push(3.0, 32, 2, drain_cost=145.0)
    done = wb.drain_all(6.0)
    assert done == pytest.approx(2 * 145.0 / 4)
    assert committed == {0: 1, 32: 2}
    assert wb.occupancy(done) == 0


def test_merge_after_retire_creates_new_entry():
    wb, _ = make_wb()
    wb.push(0.0, 0, "a", drain_cost=22.0)
    wb.drain_all(0.0)
    wb.push(100.0, 8, "b", drain_cost=22.0)
    assert wb.merged_writes == 0
    assert len(wb._pending) == 1


def test_reset():
    wb, _ = make_wb()
    wb.push(0.0, 0, "a", drain_cost=22.0)
    wb.reset()
    assert wb.occupancy(0.0) == 0
    assert wb._last_retire == 0.0
