"""Integration tests for the composed node memory system.

These assert the headline local-memory numbers of paper section 2:
L1 hit = 1 cycle, full memory access ~= 22 cycles, off-page +9,
same-bank worst case 40, write merging ~3 cycles/store, steady-state
non-merged writes ~145/4 ns, and the contrast with the workstation
configuration (L2, small pages).
"""

import pytest

from repro.node.memsys import t3d_memory_system, workstation_memory_system

KB = 1024


@pytest.fixture
def ms():
    return t3d_memory_system()


def warm_reads(ms, addrs):
    now = 0.0
    for a in addrs:
        now += ms.read_cycles(now, a)
    return now


def avg_read(ms, addrs, now=0.0):
    total = 0.0
    for a in addrs:
        c = ms.read_cycles(now, a)
        total += c
        now += c
    return total / len(addrs)


def test_l1_hit_is_one_cycle(ms):
    addrs = list(range(0, 4 * KB, 8))
    warm_reads(ms, addrs)
    assert avg_read(ms, addrs, now=1e6) == pytest.approx(1.0)


def test_l1_miss_costs_full_memory_access(ms):
    # 16 KB array, 32 B stride: every read misses, stays on-page mostly.
    addrs = list(range(0, 16 * KB, 32))
    warm_reads(ms, addrs)
    avg = avg_read(ms, addrs, now=1e6)
    assert 22.0 <= avg <= 24.0


def test_direct_mapped_no_drop_at_large_stride(ms):
    # Two addresses 8 KB apart conflict forever: both always miss.
    a, b = 0, 8 * KB
    warm_reads(ms, [a, b] * 4)
    costs = []
    now = 1e6
    for addr in [a, b] * 8:
        c = ms.read_cycles(now, addr)
        costs.append(c)
        now += c
    assert min(costs) >= 22.0


def test_64kb_stride_exposes_same_bank_penalty(ms):
    addrs = list(range(0, 512 * KB, 64 * KB))
    warm_reads(ms, addrs)
    avg = avg_read(ms, addrs, now=1e6)
    assert avg == pytest.approx(1.0 + 40.0, abs=2.0) or avg == pytest.approx(40.0, abs=2.0)


def test_write_merging_small_stride(ms):
    now = 0.0
    costs = []
    for a in range(0, 4 * KB, 8):
        c = ms.write_cycles(now, a)
        costs.append(c)
        now += c
    assert sum(costs) / len(costs) == pytest.approx(3.0, abs=0.5)


def test_write_steady_state_32b_stride(ms):
    # Non-merged writes proceed at ~drain/4 per entry: ~(22/4) cycles
    # once the buffer pipelines, i.e. ~36 ns, matching Figure 2.
    now = 0.0
    costs = []
    for a in range(0, 32 * KB, 32):
        c = ms.write_cycles(now, a)
        costs.append(c)
        now += c
    steady = sum(costs[64:]) / len(costs[64:])
    assert steady == pytest.approx(22.0 / 4, abs=1.0)


def test_memory_barrier_drains(ms):
    now = 0.0
    for a in range(0, 8 * 32, 32):
        now += ms.write_cycles(now, a, value=a)
    done = ms.memory_barrier(now)
    assert done >= now
    assert ms.write_buffer.occupancy(done) == 0
    # All values committed.
    assert ms.memory.load(32) == 32


def test_read_forwards_pending_write(ms):
    ms.write(0.0, 0x100, "new")
    cycles, value = ms.read(1.0, 0x100)
    assert value == "new"


def test_read_of_synonym_sees_stale_value(ms):
    ms.memory.store(0x100, "old")
    ms.write(0.0, 0x100, "new")
    synonym = 0x100 | (1 << 32)
    _, value = ms.read(1.0, synonym)
    assert value == "old"          # the section 3.4 hazard
    done = ms.memory_barrier(50.0)
    _, value = ms.read(done, synonym)
    assert value == "new"          # barrier restores consistency


def test_workstation_has_l2_between_l1_and_memory():
    ws = workstation_memory_system()
    # 64 KB working set: misses L1 (8 KB) but fits L2 (512 KB).
    addrs = list(range(0, 64 * KB, 32))
    now = 0.0
    for a in addrs:
        now += ws.read_cycles(now, a)
    total = 0.0
    for a in addrs:
        c = ws.read_cycles(now, a)
        total += c
        now += c
    avg = total / len(addrs)
    assert avg == pytest.approx(10.0, abs=1.0)     # L2 hit time


def test_workstation_memory_slower_than_t3d():
    ws = workstation_memory_system()
    # 2 MB working set at 8 KB stride: beyond L2, and 256 pages exceed
    # the 32-entry TLB, so every access adds a 35-cycle miss to the
    # 45-cycle memory access — Figure 1's 8 KB-stride inflection.
    addrs = list(range(0, 2 * KB * KB, 8 * KB))
    now = 0.0
    for a in addrs:
        now += ws.read_cycles(now, a)
    total = 0.0
    for a in addrs:
        c = ws.read_cycles(now, a)
        total += c
        now += c
    avg = total / len(addrs)
    assert avg >= 45.0 + 35.0 - 1.0


def test_t3d_streaming_bandwidth_roughly_double_workstation():
    from repro.params import mb_per_s

    def stream_bw(ms):
        addrs = list(range(0, 256 * KB, 8))
        now = 0.0
        total = 0.0
        for a in addrs:
            c = ms.read_cycles(now, a)
            total += c
            now += c
        return mb_per_s(len(addrs) * 8, total)

    t3d_bw = stream_bw(t3d_memory_system())
    ws_bw = stream_bw(workstation_memory_system())
    assert t3d_bw > 150.0            # paper: ~220 MB/s
    assert ws_bw < 0.65 * t3d_bw     # paper: "about half"


def test_reset_restores_cold_state(ms):
    warm_reads(ms, range(0, 4 * KB, 8))
    ms.reset()
    assert ms.l1.resident_lines == 0
    assert ms.read_cycles(0.0, 0) > 20.0
