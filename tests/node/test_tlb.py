"""Unit tests for the TLB model (paper section 2.2)."""

import pytest

from repro.node.tlb import Tlb
from repro.params import TlbParams

KB = 1024


def test_t3d_huge_pages_never_miss():
    tlb = Tlb(TlbParams(never_misses=True))
    for addr in range(0, 64 * 1024 * 1024, 8 * 1024 * 1024):
        assert tlb.translate(addr) == 0.0
    assert tlb.misses == 0


def test_workstation_first_touch_misses():
    tlb = Tlb(TlbParams(entries=4, page_bytes=8 * KB, miss_cycles=35.0,
                        never_misses=False))
    assert tlb.translate(0) == pytest.approx(35.0)
    assert tlb.translate(100) == 0.0
    assert tlb.translate(8 * KB) == pytest.approx(35.0)


def test_lru_eviction():
    tlb = Tlb(TlbParams(entries=2, page_bytes=8 * KB, miss_cycles=35.0,
                        never_misses=False))
    tlb.translate(0 * 8 * KB)
    tlb.translate(1 * 8 * KB)
    tlb.translate(0)                       # touch page 0 -> page 1 is LRU
    tlb.translate(2 * 8 * KB)              # evicts page 1
    assert tlb.translate(0) == 0.0
    assert tlb.translate(8 * KB) == pytest.approx(35.0)


def test_working_set_beyond_reach_always_misses():
    tlb = Tlb(TlbParams(entries=4, page_bytes=8 * KB, miss_cycles=35.0,
                        never_misses=False))
    pages = [i * 8 * KB for i in range(8)]
    for addr in pages:   # warm
        tlb.translate(addr)
    costs = [tlb.translate(addr) for addr in pages]
    assert all(c == pytest.approx(35.0) for c in costs)


def test_reset():
    tlb = Tlb(TlbParams(entries=4, page_bytes=8 * KB, miss_cycles=35.0,
                        never_misses=False))
    tlb.translate(0)
    tlb.reset()
    assert tlb.misses == 0
    assert tlb.translate(0) == pytest.approx(35.0)
