"""Unit tests for the page-mode DRAM model (paper section 2.2)."""

import pytest

from repro.node.dram import Dram
from repro.params import DramParams

KB = 1024


@pytest.fixture
def dram():
    return Dram(DramParams())


def test_base_access_cost_on_open_page(dram):
    dram.access(0)  # opens the row
    assert dram.access(8) == pytest.approx(22.0)
    assert dram.access(64) == pytest.approx(22.0)


def test_first_access_pays_off_page(dram):
    # Cold row: off-page penalty, no same-bank conflict (no history).
    assert dram.access(0) == pytest.approx(22.0 + 9.0)


def test_bank_mapping_interleaves_16kb_blocks(dram):
    assert dram.bank_of(0) == 0
    assert dram.bank_of(16 * KB) == 1
    assert dram.bank_of(32 * KB) == 2
    assert dram.bank_of(48 * KB) == 3
    assert dram.bank_of(64 * KB) == 0


def test_within_bank_offset_compacts_blocks(dram):
    # Bank 0 owns blocks 0, 4, 8 ... -> within-bank offsets 0, 16K, 32K.
    assert dram.within_bank_offset(0) == 0
    assert dram.within_bank_offset(64 * KB) == 16 * KB
    assert dram.within_bank_offset(64 * KB + 100) == 16 * KB + 100
    assert dram.within_bank_offset(128 * KB) == 32 * KB


def test_16kb_stride_misses_page_every_access(dram):
    dram.access(0)
    latencies = [dram.access(i * 16 * KB) for i in range(1, 8)]
    # Every access changes bank and row: +9 cycles, no same-bank hit.
    assert all(lat == pytest.approx(31.0) for lat in latencies)


def test_64kb_stride_hits_same_bank_full_cycle_time(dram):
    dram.access(0)
    latencies = [dram.access(i * 64 * KB) for i in range(1, 8)]
    # Same bank every time, new row every time: 22 + 9 + 9 = 40 cycles.
    assert all(lat == pytest.approx(40.0) for lat in latencies)


def test_32kb_stride_alternates_two_banks_no_same_bank_penalty(dram):
    dram.access(0)
    latencies = [dram.access(i * 32 * KB) for i in range(1, 8)]
    assert all(lat == pytest.approx(31.0) for lat in latencies)


def test_sequential_stream_stays_on_page(dram):
    dram.access(0)
    latencies = [dram.access(a) for a in range(32, 8 * KB, 32)]
    assert all(lat == pytest.approx(22.0) for lat in latencies)


def test_peek_does_not_mutate_state(dram):
    dram.access(0)
    before = dram.peek_access_cycles(16 * KB)
    again = dram.peek_access_cycles(16 * KB)
    assert before == again == pytest.approx(31.0)
    # State unchanged: an access still pays the penalty peek predicted.
    assert dram.access(16 * KB) == pytest.approx(31.0)


def test_reset_clears_history(dram):
    dram.access(0)
    dram.access(64 * KB)
    dram.reset()
    assert dram.accesses == 0
    assert dram.access(0) == pytest.approx(31.0)  # cold again


def test_counters_track_misses(dram):
    dram.access(0)
    dram.access(8)
    dram.access(64 * KB)
    assert dram.accesses == 3
    assert dram.row_misses == 2
    assert dram.same_bank_conflicts == 1
