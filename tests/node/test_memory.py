"""Unit tests for the functional word store."""

from repro.node.memory import WordMemory


def test_unwritten_reads_zero():
    mem = WordMemory()
    assert mem.load(0x1234) == 0


def test_store_load_round_trip():
    mem = WordMemory()
    mem.store(0x100, 3.5)
    assert mem.load(0x100) == 3.5


def test_word_granularity():
    mem = WordMemory()
    mem.store(0x100, "word")
    # Any address within the word reads the same value.
    assert mem.load(0x107) == "word"
    assert mem.load(0x108) == 0
    # A sub-word-addressed store replaces the whole word.
    mem.store(0x103, "other")
    assert mem.load(0x100) == "other"


def test_range_helpers():
    mem = WordMemory()
    mem.store_range(0x200, [1, 2, 3])
    assert mem.load_range(0x200, 4) == [1, 2, 3, 0]


def test_len_counts_written_words():
    mem = WordMemory()
    mem.store(0, 1)
    mem.store(7, 2)        # same word
    mem.store(8, 3)
    assert len(mem) == 2
