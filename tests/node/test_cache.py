"""Unit tests for the cache tag model (paper sections 1.2, 2.2, 3.4)."""

import pytest

from repro.node.cache import Cache
from repro.params import CacheParams

KB = 1024


@pytest.fixture
def l1():
    """The T3D's 8 KB direct-mapped, 32 B line L1."""
    return Cache(CacheParams())


def test_geometry():
    params = CacheParams()
    assert params.num_lines == 256
    assert params.num_sets == 256


def test_miss_then_hit(l1):
    assert not l1.lookup(0x1000)
    l1.fill(0x1000)
    assert l1.lookup(0x1000)
    assert l1.hits == 1 and l1.misses == 1


def test_line_granularity(l1):
    l1.fill(0x1000)
    # Any address in the same 32-byte line hits.
    assert l1.lookup(0x1000 + 31)
    assert not l1.lookup(0x1000 + 32)


def test_direct_mapped_conflict(l1):
    # Two addresses 8 KB apart map to the same set and evict each other.
    l1.fill(0)
    assert l1.set_index(0) == l1.set_index(8 * KB)
    evicted = l1.fill(8 * KB)
    assert evicted == 0
    assert not l1.contains(0)
    assert l1.contains(8 * KB)


def test_two_way_keeps_both(two_way=None):
    cache = Cache(CacheParams(associativity=2))
    cache.fill(0)
    cache.fill(8 * KB // 2 * 2)  # 8 KB apart in a 8KB 2-way = same set
    cache.fill(0 + 4 * KB)
    assert cache.contains(0) or cache.contains(4 * KB)


def test_two_way_lru_replacement():
    cache = Cache(CacheParams(size_bytes=64, line_bytes=32, associativity=2))
    # One set of two ways: lines 0 and 32 conflict with 64 only via sets.
    assert cache.params.num_sets == 1
    cache.fill(0)
    cache.fill(64)
    cache.lookup(0)          # touch 0 -> 64 becomes LRU
    evicted = cache.fill(128)
    assert evicted == 64
    assert cache.contains(0)


def test_annex_synonyms_share_a_set(l1):
    # Annex index lives in high-order bits (bit 32+); index bits are low.
    base = 0x2000
    synonym = base | (3 << 32)
    assert l1.set_index(base) == l1.set_index(synonym)
    l1.fill(base)
    evicted = l1.fill(synonym)
    # The synonym evicts the original: they can never be co-resident,
    # which is why cache synonyms are harmless (section 3.4).
    assert evicted == base
    assert not l1.contains(base)


def test_invalidate(l1):
    l1.fill(0x40)
    assert l1.invalidate(0x40)
    assert not l1.contains(0x40)
    assert not l1.invalidate(0x40)


def test_flush_all(l1):
    for i in range(10):
        l1.fill(i * 32)
    assert l1.resident_lines == 10
    assert l1.flush_all() == 10
    assert l1.resident_lines == 0


def test_contains_does_not_touch_counters(l1):
    l1.fill(0)
    hits, misses = l1.hits, l1.misses
    l1.contains(0)
    l1.contains(999999)
    assert (l1.hits, l1.misses) == (hits, misses)


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        CacheParams(size_bytes=100, line_bytes=32, associativity=1)
