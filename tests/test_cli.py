"""Tests for the command-line interface and the experiment registry."""

import pytest

from repro.cli import main
from repro.reporting.experiments import all_experiments, generate_markdown


def test_headlines_command(capsys):
    assert main(["headlines"]) == 0
    out = capsys.readouterr().out
    assert "uncached_read" in out
    assert "annex_update" in out


def test_hazards_command(capsys):
    assert main(["hazards"]) == 0
    out = capsys.readouterr().out
    assert out.count("observed") >= 3
    assert "NOT OBSERVED" not in out


def test_em3d_command_quick(capsys):
    assert main(["em3d", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "simple" in out and "bulk" in out and "msg" in out
    assert "us/edge" in out


def test_experiments_to_file(tmp_path, capsys):
    target = tmp_path / "record.md"
    assert main(["experiments", "--quick", "-o", str(target)]) == 0
    text = target.read_text()
    assert "# EXPERIMENTS" in text
    assert "F1:" in text
    assert "Known deviations" in text


def test_experiment_registry_covers_all_artifacts():
    ids = " ".join(e.exp_id for e in all_experiments())
    for artifact in ("F1", "F2", "F4", "F5", "F6", "F7", "F8", "F9",
                     "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9",
                     "T10"):
        assert artifact in ids, artifact


def test_generate_markdown_quick_ratios_near_one():
    text = generate_markdown(quick=True)
    # Spot-check a few exact calibrations survive the quick sweep.
    assert "| annex update (cycles) | 23.00 | 23.00 | 1.00 | cy |" in text
    assert "| message send (ns) | 813.00 | 813.33 | 1.00 | ns |" in text


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_experiments_json_output(tmp_path):
    import json
    target = tmp_path / "record.json"
    assert main(["experiments", "--quick", "--json",
                 "-o", str(target)]) == 0
    data = json.loads(target.read_text())
    assert isinstance(data, list) and len(data) >= 8
    first = data[0]
    assert first["id"] == "F1"
    assert all({"quantity", "paper", "measured", "ratio", "unit"}
               <= set(row) for row in first["rows"])
