"""The event layer at full machine scale (ROADMAP item 5 leftover).

The observability layer was built and golden-tested on small machines;
this gated suite drives the 1024-processor EM3D weak-scaling point
through it end to end — the same graph parameters as
``benchmarks/test_em3d_weak_scaling.py``'s full sweep — and holds the
output to the registered schemas: every ring-buffer record validates,
the per-event counters are consistent with emission, and the
per-primitive counter harvest spans all 1024 processor instances.

Gated behind ``REPRO_SCALING_FULL`` (a traced full-scale run takes on
the order of a minute: tracing forces the flattened put kernel back to
the generic per-element loop, which is itself part of what this test
exercises).
"""

import os

import pytest

from repro.apps.em3d import make_graph, run_em3d
from repro.machine.machine import Machine
from repro.network.torus import balanced_torus_shape
from repro.params import t3d_machine_params
from repro.trace import tracer as trace
from repro.trace.events import validate_record

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_SCALING_FULL", "").strip(),
    reason="full-scale traced run; set REPRO_SCALING_FULL=1")

NUM_PES = 1024
NODES_PER_PE = 64
DEGREE = 6
FRACTION = 0.3
RING_CAPACITY = 1 << 16


def test_traced_1024_pe_em3d_is_well_formed():
    graph = make_graph(NUM_PES, NODES_PER_PE, DEGREE, FRACTION,
                       seed=1995)
    with trace.tracing(ring_capacity=RING_CAPACITY) as tracer:
        # The machine is built inside the traced region so every unit
        # registers as a counter provider.
        machine = Machine(t3d_machine_params(
            balanced_torus_shape(NUM_PES)))
        result = run_em3d(machine, graph, "put", steps=1,
                          warmup_steps=0)

    assert result.us_per_edge > 0

    # The run emitted at primitive frequency: far more events than the
    # bounded ring retains, and the ring holds exactly its capacity.
    assert tracer.events_emitted > RING_CAPACITY
    assert len(tracer.ring) == RING_CAPACITY
    for record in tracer.ring:
        validate_record(record)

    # Counter totals are consistent with emission, and the phase-level
    # events the EM3D kernels emit arrived from all over the machine.
    assert sum(c.count for c in tracer.counters.values()) \
        == tracer.events_emitted
    fills = tracer.counters["annex_ghost_fill"]
    # Two half-steps per processor (steps=1, warmup=0).
    assert fills.count == 2 * NUM_PES
    assert tracer.counters["barrier_start"].count % NUM_PES == 0
    if os.environ.get("REPRO_COHORT", "1").strip() != "0":
        assert tracer.counters["cohort_round"].count > 0

    # The provider harvest spans the whole machine: every per-node
    # unit kind reports one instance per processor, and the hardware
    # counters actually moved.
    harvested = tracer.provider_counters()
    for kind in ("write_buffer", "dram", "remote",
                 "annex", "prefetch", "msgqueue", "blt", "tlb"):
        assert harvested[kind]["instances"] == NUM_PES, kind
    assert harvested["cache"]["instances"] >= NUM_PES
    assert harvested["barrier"]["instances"] == 1
    assert harvested["barrier"]["barriers_completed"] > 0
    assert harvested["cache"]["hits"] > 0
    assert harvested["dram"]["row_misses"] > 0
    assert harvested["remote"]["stores"] > 0
