"""Unit tests for the tracer core: ring, counters, sinks, schema."""

import io
import json

import pytest

from repro.trace import EVENT_TYPES, validate_record
from repro.trace import tracer as trace
from repro.trace.chrome import to_chrome, write_chrome
from repro.trace.summary import event_rows, format_summary


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test starts and ends with tracing off and an empty ring."""
    trace.disable()
    trace.TRACER.reset()
    yield
    trace.disable()
    trace.TRACER.reset()


def test_disabled_by_default():
    assert trace.TRACE_ENABLED is False


def test_enable_disable_flips_module_flag():
    trace.enable()
    assert trace.TRACE_ENABLED is True
    trace.disable()
    assert trace.TRACE_ENABLED is False


def test_emit_lands_in_ring_and_counters():
    trace.enable()
    trace.emit("ctx_switch", t=10.0, pe=3)
    trace.emit("remote_read", t=20.0, pe=0, target=1, offset=64,
               cycles=95.0)
    tracer = trace.TRACER
    assert tracer.events_emitted == 2
    assert len(tracer.ring) == 2
    assert tracer.counters["ctx_switch"].count == 1
    assert tracer.counters["remote_read"].cycles == 95.0


def test_emit_rejects_unregistered_event():
    trace.enable()
    with pytest.raises(KeyError):
        trace.emit("no_such_event", t=0.0, pe=0)


def test_counter_sums_cycles_and_bytes():
    trace.enable()
    trace.emit("remote_ack", t=1.0, pe=0, target=1, nbytes=8,
               ack_time=50.0)
    trace.emit("remote_ack", t=2.0, pe=0, target=1, nbytes=24,
               ack_time=60.0)
    counter = trace.TRACER.counters["remote_ack"]
    assert counter.count == 2
    assert counter.nbytes == 32


def test_ring_capacity_bounds_memory():
    trace.enable(ring_capacity=4)
    for i in range(10):
        trace.emit("ctx_switch", t=float(i), pe=0)
    tracer = trace.TRACER
    assert len(tracer.ring) == 4
    assert tracer.events_emitted == 10        # counters see everything
    assert tracer.ring[0]["t"] == 6.0         # oldest dropped first


def test_jsonl_sink_receives_schema_valid_lines():
    sink = io.StringIO()
    trace.enable(sink=sink)
    trace.emit("wb_push", t=5.0, pe=1, line=128, stall=0.0, retire=9.0)
    trace.emit("annex_update", pe=1, index=3, target=7, mode="uncached")
    lines = sink.getvalue().splitlines()
    assert len(lines) == 2
    for line in lines:
        validate_record(json.loads(line))
    assert json.loads(lines[1])["t"] is None  # untimed event


def test_path_sink_is_opened_and_closed(tmp_path):
    path = tmp_path / "run.jsonl"
    trace.enable(sink=str(path))
    trace.emit("ctx_switch", t=0.0, pe=0)
    trace.disable()                            # flush + close owned sink
    records = [json.loads(l) for l in path.read_text().splitlines()]
    assert records == [{"ev": "ctx_switch", "t": 0.0, "pe": 0}]


def test_tracing_context_manager_restores_disabled():
    with trace.tracing() as tracer:
        assert trace.TRACE_ENABLED is True
        trace.emit("ctx_switch", t=0.0, pe=0)
    assert trace.TRACE_ENABLED is False
    assert tracer.events_emitted == 1


def test_enable_resets_by_default():
    trace.enable()
    trace.emit("ctx_switch", t=0.0, pe=0)
    trace.enable()                             # fresh run
    assert trace.TRACER.events_emitted == 0
    assert not trace.TRACER.counters


def test_provider_counters_summed_per_kind():
    class FakeUnit:
        def __init__(self, hits):
            self.hits = hits

        def counters(self):
            return {"hits": self.hits}

    trace.enable()
    trace.TRACER.register_provider("cache", FakeUnit(3))
    trace.TRACER.register_provider("cache", FakeUnit(4))
    merged = trace.TRACER.provider_counters()
    assert merged["cache"] == {"hits": 7, "instances": 2}


def test_units_register_as_providers_only_when_enabled():
    from repro.params import t3d_machine_params
    from repro.machine.machine import Machine

    Machine(t3d_machine_params((2, 1, 1)))     # tracing off: no providers
    assert not trace.TRACER._providers
    trace.enable()
    Machine(t3d_machine_params((2, 1, 1)))
    kinds = set(trace.TRACER._providers)
    assert {"cache", "dram", "tlb", "write_buffer", "remote", "prefetch",
            "blt", "annex", "msgqueue", "barrier"} <= kinds


# ---------------------------------------------------------------- schema

def test_validate_rejects_unknown_event():
    with pytest.raises(ValueError, match="unregistered event"):
        validate_record({"ev": "bogus", "t": 0.0, "pe": 0})


def test_validate_rejects_missing_required_field():
    with pytest.raises(ValueError, match="missing field"):
        validate_record({"ev": "remote_read", "t": 0.0, "pe": 0,
                         "target": 1, "offset": 0})   # no cycles


def test_validate_rejects_extra_field():
    with pytest.raises(ValueError, match="unregistered fields"):
        validate_record({"ev": "ctx_switch", "t": 0.0, "pe": 0,
                         "surprise": 1})


def test_validate_rejects_wrong_type():
    with pytest.raises(ValueError, match="expected"):
        validate_record({"ev": "wb_merge", "t": 0.0, "pe": 0,
                         "line": "not-an-int"})


def test_every_spec_names_its_primitive():
    for spec in EVENT_TYPES.values():
        assert spec.primitive, spec.name
        assert spec.doc, spec.name


# ---------------------------------------------------------------- export

def test_chrome_export_spans_and_instants():
    trace.enable()
    trace.emit("blt_stream", t=100.0, pe=2, direction="read",
               nbytes=4096, completion=500.0)
    trace.emit("ctx_switch", t=50.0, pe=1)
    doc = to_chrome(trace.TRACER.ring)
    events = [e for e in doc["traceEvents"] if e.get("ph") in ("X", "i")]
    span = next(e for e in events if e["ph"] == "X")
    assert span["tid"] == 2
    assert span["dur"] == pytest.approx((500.0 - 100.0) / 150.0)
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["tid"] == 1


def test_chrome_export_skips_untimed_events(tmp_path):
    trace.enable()
    trace.emit("annex_update", pe=0, index=0, target=1, mode="uncached")
    trace.emit("ctx_switch", t=0.0, pe=0)
    out = tmp_path / "trace.json"
    n = write_chrome(trace.TRACER.ring, str(out))
    assert n == 1
    json.loads(out.read_text())                # well-formed file


def test_summary_tabulates_by_primitive():
    trace.enable()
    trace.emit("remote_read", t=0.0, pe=0, target=1, offset=0,
               cycles=95.0)
    trace.emit("barrier_start", t=0.0, pe=0, epoch=1)
    rows = event_rows(trace.TRACER)
    assert {r["primitive"] for r in rows} == {"remote", "barrier"}
    text = format_summary(trace.TRACER)
    assert "remote_read" in text and "barrier_start" in text
