"""Golden equivalence: tracing must observe the model, never perturb it.

The acceptance bar for the instrumentation layer is that a traced run
and an untraced run measure *identical* latencies — the hooks only
read state that the model already computed.  These tests run real
experiments both ways and diff the measured rows exactly.
"""

import json

import pytest

from repro.trace import validate_record
from repro.trace import tracer as trace


@pytest.fixture(autouse=True)
def clean_tracer():
    trace.disable()
    trace.TRACER.reset()
    yield
    trace.disable()
    trace.TRACER.reset()


def _run_fig1_quick():
    from repro.reporting.series import generate_series
    return generate_series("fig1", quick=True)


def test_fig1_traced_equals_untraced(tmp_path):
    baseline = _run_fig1_quick()

    path = tmp_path / "fig1.jsonl"
    trace.enable(sink=str(path))
    try:
        traced = _run_fig1_quick()
    finally:
        trace.disable()

    assert traced == baseline                  # identical measured rows

    records = [json.loads(l) for l in path.read_text().splitlines()]
    for record in records:
        validate_record(record)                # schema-valid JSONL


def _run_em3d_small():
    from repro.params import t3d_machine_params
    from repro.machine.machine import Machine
    from repro.apps.em3d.graph import make_graph
    from repro.apps.em3d.kernels import run_em3d, VERSIONS

    results = {}
    for version in VERSIONS:
        machine = Machine(t3d_machine_params((2, 2, 1)))
        graph = make_graph(num_pes=4, nodes_per_pe=10, degree=4,
                           remote_fraction=0.4, seed=11)
        r = run_em3d(machine, graph, version, steps=1, warmup_steps=1)
        results[version] = (r.us_per_edge, r.e_values, r.h_values)
    return results


def test_em3d_all_versions_traced_equals_untraced(tmp_path):
    baseline = _run_em3d_small()

    path = tmp_path / "em3d.jsonl"
    trace.enable(sink=str(path))
    try:
        traced = _run_em3d_small()
    finally:
        trace.disable()

    for version, (us, e_vals, h_vals) in baseline.items():
        t_us, t_e, t_h = traced[version]
        assert t_us == us, version             # bit-identical timing
        assert t_e == e_vals and t_h == h_vals, version

    records = [json.loads(l) for l in path.read_text().splitlines()]
    assert records, "traced run emitted no events"
    distinct = set()
    for record in records:
        validate_record(record)
        distinct.add(record["ev"])
    # The seven EM3D versions together exercise the breadth of the
    # instrumentation: at least 8 distinct event types must appear.
    assert len(distinct) >= 8, sorted(distinct)


def test_counters_consistent_between_fast_and_reference_compute():
    """Unit counters harvested by ``repro counters`` must not depend on
    whether the inlined fast compute path ran."""
    from repro.apps.em3d import kernels
    from repro.params import t3d_machine_params
    from repro.machine.machine import Machine
    from repro.apps.em3d.graph import make_graph

    def run_and_harvest(use_fast):
        old = kernels.USE_FAST_COMPUTE
        kernels.USE_FAST_COMPUTE = use_fast
        try:
            trace.enable()
            machine = Machine(t3d_machine_params((2, 1, 1)))
            graph = make_graph(num_pes=2, nodes_per_pe=8, degree=3,
                               remote_fraction=0.3, seed=5)
            kernels.run_em3d(machine, graph, "put", steps=1,
                             warmup_steps=1)
            merged = trace.TRACER.provider_counters()
        finally:
            kernels.USE_FAST_COMPUTE = old
            trace.disable()
        return merged

    fast = run_and_harvest(True)
    reference = run_and_harvest(False)
    for kind in ("cache", "dram", "write_buffer", "remote", "annex"):
        assert fast[kind] == reference[kind], kind
